#include "analyses/constprop.hpp"

#include <deque>

#include "ir/regions.hpp"
#include "obs/metrics.hpp"
#include "support/bitvector.hpp"
#include "semantics/state.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

CpValue meet(const CpValue& a, const CpValue& b) {
  if (a.kind == CpValue::Kind::kUndef) return b;
  if (b.kind == CpValue::Kind::kUndef) return a;
  if (a.kind == CpValue::Kind::kNonConst || b.kind == CpValue::Kind::kNonConst) {
    return CpValue::nonconst();
  }
  return a.value == b.value ? a : CpValue::nonconst();
}

namespace {

// Writes / accesses of node n restricted to variables.
void accesses(const Graph& g, NodeId n, std::vector<VarId>* reads,
              VarId* write) {
  const Node& node = g.node(n);
  auto add_rhs = [&](const Rhs& rhs) {
    if (rhs.is_term()) {
      if (rhs.term().lhs.is_var()) reads->push_back(rhs.term().lhs.var_id());
      if (rhs.term().rhs.is_var()) reads->push_back(rhs.term().rhs.var_id());
    } else if (rhs.trivial().is_var()) {
      reads->push_back(rhs.trivial().var_id());
    }
  };
  if (node.kind == NodeKind::kAssign) {
    *write = node.lhs;
    add_rhs(node.rhs);
  } else if (node.kind == NodeKind::kTest) {
    add_rhs(*node.cond);
  }
}

struct ContestedInfo {
  std::vector<std::uint8_t> contested;
  // Per region (recursive): variables written in its subtree.
  std::vector<BitVector> region_write;
};

// contested[v]: some component writes v while a potentially-parallel
// sibling reads or writes it. Aggregated per component like NonDest.
ContestedInfo compute_contested(const Graph& g) {
  std::size_t k = g.num_vars();
  std::vector<BitVector> region_access(g.num_regions(), BitVector(k));
  std::vector<BitVector> region_write(g.num_regions(), BitVector(k));
  for (std::size_t ri = 0; ri < g.num_regions(); ++ri) {
    RegionId r(static_cast<RegionId::underlying>(ri));
    for (NodeId n : g.nodes_in_region_recursive(r)) {
      std::vector<VarId> reads;
      VarId write;
      accesses(g, n, &reads, &write);
      for (VarId v : reads) region_access[ri].set(v.index());
      if (write.valid()) {
        region_access[ri].set(write.index());
        region_write[ri].set(write.index());
      }
    }
  }
  BitVector contested(k);
  for (std::size_t si = 0; si < g.num_par_stmts(); ++si) {
    const ParStmt& stmt = g.par_stmt(ParStmtId(static_cast<ParStmtId::underlying>(si)));
    for (RegionId a : stmt.components) {
      for (RegionId b : stmt.components) {
        if (a == b) continue;
        contested |= region_write[a.index()] & region_access[b.index()];
      }
    }
  }
  ContestedInfo info;
  info.contested.assign(k, 0);
  for (std::size_t v = 0; v < k; ++v) info.contested[v] = contested.test(v);
  info.region_write = std::move(region_write);
  return info;
}

CpValue eval_operand_cp(const Operand& op, const std::vector<CpValue>& state) {
  if (op.is_const()) return CpValue::constant(op.const_value());
  return state[op.var_id().index()];
}

CpValue eval_rhs_cp(const Rhs& rhs, const std::vector<CpValue>& state) {
  if (rhs.is_trivial()) return eval_operand_cp(rhs.trivial(), state);
  CpValue a = eval_operand_cp(rhs.term().lhs, state);
  CpValue b = eval_operand_cp(rhs.term().rhs, state);
  if (a.kind == CpValue::Kind::kUndef || b.kind == CpValue::Kind::kUndef) {
    return CpValue::undef();
  }
  if (!a.is_const() || !b.is_const()) return CpValue::nonconst();
  // Reuse the interpreter's arithmetic so folding agrees with execution.
  VarState dummy(0);
  return CpValue::constant(eval_rhs(
      dummy, Rhs(Term{rhs.term().op, Operand::constant(a.value),
                      Operand::constant(b.value)})));
}

}  // namespace

ConstPropAnalysis analyze_constants(const Graph& g) {
  std::size_t k = g.num_vars();
  ConstPropAnalysis res;
  ContestedInfo info = compute_contested(g);
  res.contested = info.contested;

  auto clamp = [&](std::vector<CpValue>& state) {
    for (std::size_t v = 0; v < k; ++v) {
      if (res.contested[v]) state[v] = CpValue::nonconst();
    }
  };

  // Greatest-fixpoint style: start Undef everywhere, seed the start node
  // with the initial state (all variables 0), iterate to stability.
  res.entry.assign(g.num_nodes(), std::vector<CpValue>(k));
  std::vector<std::vector<CpValue>> exit(g.num_nodes(),
                                         std::vector<CpValue>(k));
  std::vector<CpValue> init(k, CpValue::constant(0));
  clamp(init);
  res.entry[g.start().index()] = init;
  exit[g.start().index()] = std::move(init);

  std::deque<NodeId> worklist;
  std::vector<char> queued(g.num_nodes(), 0);
  for (NodeId m : g.succs(g.start())) {
    worklist.push_back(m);
    queued[m.index()] = 1;
  }
  while (!worklist.empty()) {
    NodeId n = worklist.front();
    worklist.pop_front();
    queued[n.index()] = 0;

    std::vector<CpValue> in(k);
    if (g.node(n).kind == NodeKind::kParEnd) {
      // Parallel-aware join: an uncontested variable is written by at most
      // one component; its post-join value is that component's exit value.
      // Meeting every component's exit would drag the other components'
      // stale pass-through values in (they never wrote v).
      for (std::size_t v = 0; v < k; ++v) {
        RegionId writer;
        bool multiple = false;
        const ParStmt& stmt = g.par_stmt(g.node(n).par_stmt);
        for (RegionId comp : stmt.components) {
          if (info.region_write[comp.index()].test(v)) {
            multiple = writer.valid();
            writer = comp;
          }
        }
        for (NodeId m : g.preds(n)) {
          if (!multiple && writer.valid() && g.node(m).region != writer) {
            continue;
          }
          in[v] = meet(in[v], exit[m.index()][v]);
        }
      }
    } else {
      for (NodeId m : g.preds(n)) {
        for (std::size_t v = 0; v < k; ++v) {
          in[v] = meet(in[v], exit[m.index()][v]);
        }
      }
    }
    clamp(in);
    std::vector<CpValue> out = in;
    const Node& node = g.node(n);
    if (node.kind == NodeKind::kAssign &&
        !res.contested[node.lhs.index()]) {
      out[node.lhs.index()] = eval_rhs_cp(node.rhs, in);
    }
    clamp(out);
    if (in == res.entry[n.index()] && out == exit[n.index()]) continue;
    res.entry[n.index()] = std::move(in);
    exit[n.index()] = std::move(out);
    for (NodeId m : g.succs(n)) {
      if (m != g.start() && !queued[m.index()]) {
        queued[m.index()] = 1;
        worklist.push_back(m);
      }
    }
  }
  return res;
}

ConstPropResult propagate_constants(const Graph& g) {
  PARCM_OBS_TIMER("analysis.constprop");
  ConstPropResult res{g, 0, 0};
  Graph& out = res.graph;
  ConstPropAnalysis cp = analyze_constants(out);

  auto fold_operand = [&](Operand op, const std::vector<CpValue>& state) {
    if (op.is_var()) {
      CpValue v = state[op.var_id().index()];
      if (v.is_const()) {
        ++res.operands_folded;
        return Operand::constant(v.value);
      }
    }
    return op;
  };

  for (NodeId n : out.all_nodes()) {
    Node& node = out.node(n);
    const std::vector<CpValue>& state = cp.entry[n.index()];
    auto fold_rhs = [&](const Rhs& rhs) {
      if (rhs.is_trivial()) return Rhs(fold_operand(rhs.trivial(), state));
      CpValue whole = eval_rhs_cp(rhs, state);
      if (whole.is_const()) {
        ++res.rhs_folded;
        return Rhs(Operand::constant(whole.value));
      }
      Term t = rhs.term();
      t.lhs = fold_operand(t.lhs, state);
      t.rhs = fold_operand(t.rhs, state);
      return Rhs(t);
    };
    if (node.kind == NodeKind::kAssign) {
      node.rhs = fold_rhs(node.rhs);
    } else if (node.kind == NodeKind::kTest) {
      // Fold operands only; the branch structure stays (a fully constant
      // condition still selects deterministically at runtime).
      Rhs folded = fold_rhs(*node.cond);
      node.cond = folded;
    }
  }
  PARCM_OBS_COUNT("analysis.constprop.runs", 1);
  PARCM_OBS_COUNT("analysis.constprop.operands_folded", res.operands_folded);
  PARCM_OBS_COUNT("analysis.constprop.rhs_folded", res.rhs_folded);
  return res;
}

}  // namespace parcm
