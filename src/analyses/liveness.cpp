#include "analyses/liveness.hpp"

#include <deque>

namespace parcm {

LivenessResult compute_liveness(const Graph& g, VarId v) {
  LivenessResult res;
  res.live_in.assign(g.num_nodes(), 0);
  res.live_out.assign(g.num_nodes(), 0);

  auto uses = [&](NodeId n) {
    const Node& node = g.node(n);
    if (node.kind == NodeKind::kAssign) return node.rhs.uses_var(v);
    if (node.kind == NodeKind::kTest) return node.cond->uses_var(v);
    return false;
  };
  auto defs = [&](NodeId n) {
    const Node& node = g.node(n);
    return node.kind == NodeKind::kAssign && node.lhs == v;
  };

  std::deque<NodeId> worklist;
  std::vector<char> queued(g.num_nodes(), 1);
  for (NodeId n : g.all_nodes()) worklist.push_back(n);

  while (!worklist.empty()) {
    NodeId n = worklist.front();
    worklist.pop_front();
    queued[n.index()] = 0;

    std::uint8_t out = 0;
    for (NodeId m : g.succs(n)) out |= res.live_in[m.index()];
    std::uint8_t in = uses(n) || (out && !defs(n));
    if (in == res.live_in[n.index()] && out == res.live_out[n.index()]) {
      continue;
    }
    res.live_in[n.index()] = in;
    res.live_out[n.index()] = out;
    for (NodeId m : g.preds(n)) {
      if (!queued[m.index()]) {
        queued[m.index()] = 1;
        worklist.push_back(m);
      }
    }
  }
  return res;
}

std::size_t total_temp_lifetime(const Graph& g, const std::string& prefix) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < g.num_vars(); ++i) {
    VarId v(static_cast<VarId::underlying>(i));
    if (g.var_name(v).rfind(prefix, 0) != 0) continue;
    total += compute_liveness(g, v).live_node_count();
  }
  return total;
}

}  // namespace parcm
