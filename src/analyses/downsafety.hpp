// Down-safety (anticipability): a point n is down-safe for t if every path
// from n to e* computes t before any modification of t's operands (paper
// Sec. 1). Backward, must, boundary ff at e*.
//
// Variants:
//  kNaive    standard synchronization, atomic destruction (a recursive
//            assignment x := t "generates" for down-safety and is *not*
//            counted as interference) — the refuted conjecture of [17].
//  kRefined  this paper's down-safe_par: all-components synchronization rule
//            plus the implicit decomposition of recursive assignments
//            (Secs. 3.3.2/3.3.3) — interference destroys iff the statement
//            assigns an operand, recursive or not.
#pragma once

#include "analyses/predicates.hpp"
#include "analyses/upsafety.hpp"
#include "dfa/framework.hpp"
#include "dfa/packed.hpp"

namespace parcm {

PackedProblem make_downsafety_problem(const Graph& g,
                                      const LocalPredicates& preds,
                                      SafetyVariant variant);

// out[n] = "n is down-safe for the term" (Comp(n) or anticipated after n).
PackedResult compute_downsafety(const Graph& g, const LocalPredicates& preds,
                                SafetyVariant variant);

}  // namespace parcm
