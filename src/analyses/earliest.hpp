// Safety and placement predicates of the (parallel) busy code motion
// transformation (paper Secs. 3.2 and 3.3.4):
//
//   Safe(n)     = up-safe(n) or down-safe(n)
//   Earliest(n) = down-safe(n) and (n = s*, or some predecessor m fails
//                 Safe(m) and Transp(m))
//   Insert(n)   = Earliest(n)
//   Replace(n)  = Comp(n) and Safe(n)
//
// With SafetyVariant::kRefined these are the paper's Safe_par /
// Earliest_par; with kNaive they are the refuted straightforward transfer.
#pragma once

#include "analyses/downsafety.hpp"
#include "analyses/predicates.hpp"
#include "analyses/upsafety.hpp"

namespace parcm {

struct SafetyInfo {
  SafetyVariant variant = SafetyVariant::kRefined;
  std::size_t num_terms = 0;
  // Per node, one bit per term.
  std::vector<BitVector> upsafe;
  std::vector<BitVector> dnsafe;
  std::vector<BitVector> safe;
  // Full solver results, for inspection (summaries, NonDest, ...).
  PackedResult up_result;
  PackedResult down_result;
};

SafetyInfo compute_safety(const Graph& g, const LocalPredicates& preds,
                          SafetyVariant variant);

struct MotionPredicates {
  std::vector<BitVector> earliest;  // = insertion points
  std::vector<BitVector> replace;
};

struct MotionPredicateOptions {
  // At a ParEnd, let component exits support the join only when the
  // statement exports the value (the up-safe_par summary). Disabling this
  // reproduces the Fig. 7 suppression pitfall inside the refined variant.
  bool parend_export_rule = true;
};

MotionPredicates compute_motion_predicates(
    const Graph& g, const LocalPredicates& preds, const SafetyInfo& safety,
    const MotionPredicateOptions& options = {});

}  // namespace parcm
