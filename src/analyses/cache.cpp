#include "analyses/cache.hpp"

#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace parcm {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Hasher {
  std::uint64_t h = kFnvOffset;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= kFnvPrime;
    }
  }

  void mix_operand(const Operand& o) {
    mix(o.is_var() ? 1 : 2);
    mix(o.is_var() ? o.var_id().value()
                   : static_cast<std::uint64_t>(o.const_value()));
  }

  void mix_rhs(const Rhs& r) {
    if (r.is_term()) {
      const Term& t = r.term();
      mix(3);
      mix(static_cast<std::uint64_t>(t.op));
      mix_operand(t.lhs);
      mix_operand(t.rhs);
    } else {
      mix(4);
      mix_operand(r.trivial());
    }
  }
};

}  // namespace

std::uint64_t structural_hash(const Graph& g) {
  Hasher hasher;
  hasher.mix(g.num_nodes());
  hasher.mix(g.num_regions());
  hasher.mix(g.num_par_stmts());
  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);
    hasher.mix(static_cast<std::uint64_t>(node.kind));
    hasher.mix(node.region.value());
    if (node.kind == NodeKind::kAssign) {
      hasher.mix(node.lhs.value());
      hasher.mix_rhs(node.rhs);
    }
    if (node.cond.has_value()) hasher.mix_rhs(*node.cond);
    // Adjacency (removed edges are absent from the per-node lists).
    hasher.mix(node.out_edges.size());
    for (EdgeId e : node.out_edges) hasher.mix(g.edge(e).to.value());
  }
  for (std::size_t si = 0; si < g.num_par_stmts(); ++si) {
    const ParStmt& s = g.par_stmt(ParStmtId(static_cast<ParStmtId::underlying>(si)));
    hasher.mix(s.begin.value());
    hasher.mix(s.end.value());
    hasher.mix(s.parent_region.value());
    hasher.mix(s.components.size());
    for (RegionId c : s.components) hasher.mix(c.value());
  }
  return hasher.h;
}

std::shared_ptr<const AnalysisBundle> AnalysisCache::acquire(const Graph& g) {
  std::unique_lock<std::mutex> lock(mu_);
  if (bundle_valid_ && bundle_version_ == g.version()) {
    PARCM_OBS_COUNT("analysis.cache.hits", 1);
    return bundle_;
  }
  std::uint64_t hash = structural_hash(g);
  if (bundle_valid_ && bundle_hash_ == hash) {
    // Same content under a new version (e.g. an identical graph rebuilt by
    // the next benchmark iteration); refresh the fast path.
    bundle_version_ = g.version();
    PARCM_OBS_COUNT("analysis.cache.hits", 1);
    PARCM_OBS_FLIGHT(obs::FlightKind::kCacheProbe, "bundle", hash, 1);
    return bundle_;
  }
  if (bundle_valid_) PARCM_OBS_COUNT("analysis.cache.invalidations", 1);
  PARCM_OBS_COUNT("analysis.cache.misses", 1);
  PARCM_OBS_FLIGHT(obs::FlightKind::kCacheProbe, "bundle", hash, 0);
  // Build outside the lock so concurrent acquires of other graphs are not
  // serialized behind a large rebuild.
  lock.unlock();
  auto fresh = std::make_shared<const AnalysisBundle>(g.version(), g);
  lock.lock();
  bundle_ = fresh;
  bundle_version_ = g.version();
  bundle_hash_ = hash;
  bundle_valid_ = true;
  return fresh;
}

std::shared_ptr<const InterleavingInfo> AnalysisCache::interleaving(
    const Graph& g) {
  std::unique_lock<std::mutex> lock(mu_);
  if (itlv_ && itlv_graph_ == &g && itlv_version_ == g.version()) {
    PARCM_OBS_COUNT("analysis.cache.hits", 1);
    return itlv_;
  }
  PARCM_OBS_COUNT("analysis.cache.misses", 1);
  lock.unlock();
  auto fresh = std::make_shared<const InterleavingInfo>(g);
  lock.lock();
  itlv_ = fresh;
  itlv_graph_ = &g;
  itlv_version_ = g.version();
  return fresh;
}

void AnalysisCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  bundle_.reset();
  bundle_valid_ = false;
  itlv_.reset();
  itlv_graph_ = nullptr;
}

namespace {
thread_local AnalysisCache* thread_cache = nullptr;
}  // namespace

AnalysisCache& analysis_cache() {
  static AnalysisCache cache;
  if (thread_cache) return *thread_cache;
  return cache;
}

AnalysisCache* set_thread_analysis_cache(AnalysisCache* c) {
  AnalysisCache* prev = thread_cache;
  thread_cache = c;
  return prev;
}

}  // namespace parcm
