#include "analyses/cache.hpp"

#include <utility>

#include "obs/flight.hpp"
#include "obs/remarks.hpp"
#include "obs/metrics.hpp"
#include "support/arena.hpp"

namespace parcm {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Hasher {
  std::uint64_t h = kFnvOffset;
  // When set, every mixed word is appended so the caller gets the full
  // pre-image of the hash (StructuralKey::words).
  std::vector<std::uint64_t>* words = nullptr;

  void mix(std::uint64_t v) {
    if (words != nullptr) words->push_back(v);
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= kFnvPrime;
    }
  }

  void mix_operand(const Operand& o) {
    mix(o.is_var() ? 1 : 2);
    mix(o.is_var() ? o.var_id().value()
                   : static_cast<std::uint64_t>(o.const_value()));
  }

  void mix_rhs(const Rhs& r) {
    if (r.is_term()) {
      const Term& t = r.term();
      mix(3);
      mix(static_cast<std::uint64_t>(t.op));
      mix_operand(t.lhs);
      mix_operand(t.rhs);
    } else {
      mix(4);
      mix_operand(r.trivial());
    }
  }
};

std::uint64_t hash_graph(const Graph& g, std::vector<std::uint64_t>* words) {
  Hasher hasher;
  hasher.words = words;
  hasher.mix(g.num_nodes());
  hasher.mix(g.num_regions());
  hasher.mix(g.num_par_stmts());
  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);
    hasher.mix(static_cast<std::uint64_t>(node.kind));
    hasher.mix(node.region.value());
    if (node.kind == NodeKind::kAssign) {
      hasher.mix(node.lhs.value());
      hasher.mix_rhs(node.rhs);
    }
    if (node.cond.has_value()) hasher.mix_rhs(*node.cond);
    // Adjacency (removed edges are absent from the per-node lists).
    hasher.mix(node.out_edges.size());
    for (EdgeId e : node.out_edges) hasher.mix(g.edge(e).to.value());
  }
  for (std::size_t si = 0; si < g.num_par_stmts(); ++si) {
    const ParStmt& s = g.par_stmt(ParStmtId(static_cast<ParStmtId::underlying>(si)));
    hasher.mix(s.begin.value());
    hasher.mix(s.end.value());
    hasher.mix(s.parent_region.value());
    hasher.mix(s.components.size());
    for (RegionId c : s.components) hasher.mix(c.value());
  }
  return hasher.h;
}

thread_local AnalysisCache* thread_cache = nullptr;
thread_local SharedAnalysisCache* thread_shared_cache = nullptr;

}  // namespace

std::uint64_t structural_hash(const Graph& g) { return hash_graph(g, nullptr); }

StructuralKey structural_key(const Graph& g) {
  StructuralKey key;
  key.hash = hash_graph(g, &key.words);
  return key;
}

SharedAnalysisCache::Entry* SharedAnalysisCache::locate(
    Shard& shard, const StructuralKey& key, bool insert_missing) {
  auto it = shard.entries.find(key.hash);
  if (it != shard.entries.end()) {
    if (it->second.key == key) return &it->second;
    // 64-bit collision: keep the incumbent, report a definite miss. The
    // colliding shape simply never caches — correctness over hit rate.
    PARCM_OBS_COUNT("analysis.shared_cache.collisions", 1);
    return nullptr;
  }
  if (!insert_missing) return nullptr;
  if (shard.entries.size() >= kMaxEntriesPerShard) {
    // Wholesale flush: cheap, and hit/miss outcomes can never change what a
    // program's results look like, only how often analyses rebuild.
    PARCM_OBS_COUNT("analysis.shared_cache.evictions", shard.entries.size());
    shard.entries.clear();
  }
  Entry& e = shard.entries[key.hash];
  e.key = key;
  return &e;
}

std::shared_ptr<const AnalysisBundle> SharedAnalysisCache::find_bundle(
    const StructuralKey& key) {
  Shard& shard = shards_[key.hash % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = locate(shard, key, /*insert_missing=*/false);
  return e != nullptr ? e->bundle : nullptr;
}

std::shared_ptr<const InterleavingInfo> SharedAnalysisCache::find_itlv(
    const StructuralKey& key) {
  Shard& shard = shards_[key.hash % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = locate(shard, key, /*insert_missing=*/false);
  return e != nullptr ? e->itlv : nullptr;
}

void SharedAnalysisCache::put_bundle(
    const StructuralKey& key, std::shared_ptr<const AnalysisBundle> bundle) {
  Shard& shard = shards_[key.hash % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = locate(shard, key, /*insert_missing=*/true);
  if (e != nullptr && e->bundle == nullptr) {
    e->bundle = std::move(bundle);
    PARCM_OBS_COUNT("analysis.shared_cache.inserts", 1);
  }
}

void SharedAnalysisCache::put_itlv(const StructuralKey& key,
                                   std::shared_ptr<const InterleavingInfo> itlv) {
  Shard& shard = shards_[key.hash % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = locate(shard, key, /*insert_missing=*/true);
  if (e != nullptr && e->itlv == nullptr) {
    e->itlv = std::move(itlv);
    PARCM_OBS_COUNT("analysis.shared_cache.inserts", 1);
  }
}

void SharedAnalysisCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
  }
}

std::size_t SharedAnalysisCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

std::shared_ptr<const AnalysisBundle> AnalysisCache::acquire(const Graph& g) {
  std::shared_ptr<const AnalysisBundle> bundle;
  std::uint64_t hash = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (bundle_valid_ && bundle_version_ == g.version()) {
      PARCM_OBS_COUNT("analysis.cache.hits", 1);
      bundle = bundle_;
      hash = bundle_hash_;
    }
  }
  if (bundle == nullptr) bundle = acquire_slow(g, &hash);
  maybe_emit(g, *bundle, hash);
  return bundle;
}

void AnalysisCache::maybe_emit(const Graph& g, const AnalysisBundle& bundle,
                               std::uint64_t hash) {
  if (!PARCM_OBS_REMARKS_ON()) return;
  std::uint64_t epoch = obs::remarks().epoch();
  // Lock-free fast path for the overwhelmingly common case: the same
  // content re-acquired within one epoch (several passes over one program).
  // A miss only costs the slow path below, so a stale read is harmless.
  if (last_emit_epoch_.load(std::memory_order_acquire) == epoch &&
      last_emit_hash_.load(std::memory_order_relaxed) == hash) {
    return;
  }
  bool emit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch != emit_epoch_) {
      emitted_.clear();
      emit_epoch_ = epoch;
    }
    emit = emitted_.insert(hash).second;
  }
  if (emit) emit_acquisition_remarks(g, bundle.terms, bundle.preds);
  last_emit_hash_.store(hash, std::memory_order_relaxed);
  last_emit_epoch_.store(epoch, std::memory_order_release);
}

std::shared_ptr<const AnalysisBundle> AnalysisCache::acquire_slow(
    const Graph& g, std::uint64_t* hash_out) {
  StructuralKey key = structural_key(g);
  *hash_out = key.hash;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (bundle_valid_ && bundle_hash_ == key.hash) {
      // Same content under a new version (e.g. an identical graph rebuilt
      // by the next benchmark iteration); refresh the fast path.
      bundle_version_ = g.version();
      PARCM_OBS_COUNT("analysis.cache.hits", 1);
      PARCM_OBS_FLIGHT(obs::FlightKind::kCacheProbe, "bundle", key.hash, 1);
      return bundle_;
    }
    if (bundle_valid_) PARCM_OBS_COUNT("analysis.cache.invalidations", 1);
    PARCM_OBS_COUNT("analysis.cache.misses", 1);
    PARCM_OBS_FLIGHT(obs::FlightKind::kCacheProbe, "bundle", key.hash, 0);
  }
  SharedAnalysisCache* shared = thread_shared_cache;
  std::shared_ptr<const AnalysisBundle> fresh;
  if (shared != nullptr) {
    fresh = shared->find_bundle(key);
    PARCM_OBS_COUNT(fresh != nullptr ? "analysis.shared_cache.hits"
                                     : "analysis.shared_cache.misses",
                    1);
  }
  if (fresh == nullptr) {
    PARCM_OBS_COUNT("analysis.cache.builds", 1);
    // Cached artifacts outlive the current job, so their memory must come
    // from the heap even while a program arena is installed.
    ArenaPauseScope no_arena;
    fresh = std::make_shared<const AnalysisBundle>(g.version(), g);
    if (shared != nullptr) shared->put_bundle(key, fresh);
  }
  std::lock_guard<std::mutex> lock(mu_);
  bundle_ = fresh;
  bundle_version_ = g.version();
  bundle_hash_ = key.hash;
  bundle_valid_ = true;
  return fresh;
}

std::shared_ptr<const InterleavingInfo> AnalysisCache::interleaving(
    const Graph& g) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (itlv_ && itlv_graph_ == &g && itlv_version_ == g.version()) {
      PARCM_OBS_COUNT("analysis.cache.hits", 1);
      return itlv_;
    }
    PARCM_OBS_COUNT("analysis.cache.misses", 1);
  }
  SharedAnalysisCache* shared = thread_shared_cache;
  std::shared_ptr<const InterleavingInfo> fresh;
  StructuralKey key;
  if (shared != nullptr) {
    key = structural_key(g);
    fresh = shared->find_itlv(key);
    PARCM_OBS_COUNT(fresh != nullptr ? "analysis.shared_cache.hits"
                                     : "analysis.shared_cache.misses",
                    1);
  }
  if (fresh == nullptr) {
    PARCM_OBS_COUNT("analysis.cache.builds", 1);
    ArenaPauseScope no_arena;
    fresh = std::make_shared<const InterleavingInfo>(g);
    if (shared != nullptr) shared->put_itlv(key, fresh);
  }
  std::lock_guard<std::mutex> lock(mu_);
  itlv_ = fresh;
  itlv_graph_ = &g;
  itlv_version_ = g.version();
  return fresh;
}

void AnalysisCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  bundle_.reset();
  bundle_valid_ = false;
  itlv_.reset();
  itlv_graph_ = nullptr;
  emitted_.clear();
}

AnalysisCache& analysis_cache() {
  static AnalysisCache cache;
  if (thread_cache) return *thread_cache;
  return cache;
}

AnalysisCache* set_thread_analysis_cache(AnalysisCache* c) {
  AnalysisCache* prev = thread_cache;
  thread_cache = c;
  return prev;
}

SharedAnalysisCache& process_shared_analysis_cache() {
  static SharedAnalysisCache cache;
  return cache;
}

SharedAnalysisCache* set_thread_shared_analysis_cache(SharedAnalysisCache* c) {
  SharedAnalysisCache* prev = thread_shared_cache;
  thread_shared_cache = c;
  return prev;
}

}  // namespace parcm
