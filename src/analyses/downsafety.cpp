#include "analyses/downsafety.hpp"

#include "obs/metrics.hpp"
#include "obs/remarks.hpp"

namespace parcm {

PackedProblem make_downsafety_problem(const Graph& g,
                                      const LocalPredicates& preds,
                                      SafetyVariant variant) {
  PackedProblem p;
  p.dir = Direction::kBackward;
  p.policy = variant == SafetyVariant::kRefined ? SyncPolicy::kDownSafePar
                                                : SyncPolicy::kStandard;
  p.num_terms = preds.num_terms();
  p.boundary = BitVector(p.num_terms);  // nothing anticipated after e*
  p.gen.reserve(g.num_nodes());
  p.kill.reserve(g.num_nodes());
  p.destroy.reserve(g.num_nodes());
  for (NodeId n : g.all_nodes()) {
    // Barriers end the down-safe region: anticipability must not cross a
    // synchronization phase, or an initialization hoisted into an earlier
    // phase could become that phase's bottleneck and regress the execution
    // time (the paper's "extremely efficient however less precise"
    // treatment of explicit synchronization).
    if (g.node(n).kind == NodeKind::kBarrier) {
      p.gen.push_back(BitVector(p.num_terms));
      p.kill.push_back(BitVector(p.num_terms, true));
      p.destroy.push_back(BitVector(p.num_terms));
      PARCM_OBS_REMARK(obs::Remark{
          obs::RemarkKind::kBlocked, "downsafety", n.value(), -1, "",
          "barrier ends every down-safe region: hoisting across it could "
          "become the earlier phase's bottleneck",
          {obs::RemarkReason::kBarrierPhase},
          ""});
      continue;
    }
    // Local function (backward): Const_tt if Comp (the computation happens
    // before the assignment modifies anything), Const_ff if !Transp &&
    // !Comp, Id otherwise.
    BitVector gen = preds.comp(n);
    if (variant == SafetyVariant::kRefined && preds.recursive(n) &&
        g.pfg(n).valid()) {
      // Implicit decomposition (Sec. 3.3.2): inside a parallel statement a
      // recursive assignment x := t is conceptually x_t := t; x := x_t.
      // Its occurrence of t is not replaceable without materializing that
      // split — which would add non-atomic behaviours — so it generates no
      // down-safety and acts as a pure destroyer instead.
      gen.reset_all();
    }
    BitVector kill = preds.mod(n);
    kill.and_not(gen);
    p.kill.push_back(std::move(kill));
    p.gen.push_back(std::move(gen));
    // Interference: under the split, the x := x_t half destroys
    // anticipability whenever the lhs is an operand — so a recursive
    // assignment interleaved between n and the anticipated use kills the
    // property. The naive (atomic) view misses exactly that (Figs. 3/4).
    if (variant == SafetyVariant::kRefined) {
      p.destroy.push_back(preds.mod(n));
    } else {
      BitVector d = preds.mod(n);
      d.and_not(preds.comp(n));
      p.destroy.push_back(std::move(d));
    }
  }
  return p;
}

PackedResult compute_downsafety(const Graph& g, const LocalPredicates& preds,
                                SafetyVariant variant) {
  PARCM_OBS_TIMER("analysis.downsafety");
  PARCM_OBS_COUNT("analysis.downsafety.runs", 1);
  return solve_packed(g, make_downsafety_problem(g, preds, variant));
}

}  // namespace parcm
