// Minimal hand-rolled JSON writer.
//
// The observability layer serializes registries, traces, pipeline results
// and bench results to machine-readable JSON without pulling in a third-
// party dependency. The writer is push-style (begin/end scopes, key/value),
// handles escaping and comma placement, and emits keys exactly in the order
// they are pushed — callers iterate std::map so output is stable-ordered,
// which the tests rely on.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parcm::obs {

// JSON string escaping of `s` (quotes not included).
std::string json_escape(std::string_view s);

// Structural validation: true iff `s` is exactly one complete JSON value
// (objects, arrays, strings with escapes, numbers, literals). Used by the
// schema sanity tests to prove every writer emits well-formed documents;
// not a full parser — values are checked, not materialized.
bool json_valid(std::string_view s);

// Shortest round-trip decimal form of v ("null" for non-finite values,
// which JSON cannot represent).
std::string json_number(double v);

class JsonWriter {
 public:
  // pretty = true indents nested scopes by two spaces (used for files meant
  // to be read by humans and chrome://tracing alike).
  explicit JsonWriter(bool pretty = false) : pretty_(pretty) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key of the next value; only valid directly inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::signed_integral<T>) {
      return int_value(static_cast<std::int64_t>(v));
    } else {
      return uint_value(static_cast<std::uint64_t>(v));
    }
  }
  JsonWriter& null();

  // The document built so far. Valid once every scope is closed.
  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  JsonWriter& int_value(std::int64_t v);
  JsonWriter& uint_value(std::uint64_t v);
  void before_value();
  void newline_indent();

  struct Scope {
    char close;       // '}' or ']'
    bool first = true;
  };
  std::string out_;
  std::vector<Scope> stack_;
  bool pretty_ = false;
  bool pending_key_ = false;
};

}  // namespace parcm::obs
