// Minimal hand-rolled JSON writer.
//
// The observability layer serializes registries, traces, pipeline results
// and bench results to machine-readable JSON without pulling in a third-
// party dependency. The writer is push-style (begin/end scopes, key/value),
// handles escaping and comma placement, and emits keys exactly in the order
// they are pushed — callers iterate std::map so output is stable-ordered,
// which the tests rely on.
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace parcm::obs {

// JSON string escaping of `s` (quotes not included).
std::string json_escape(std::string_view s);

// Structural validation: true iff `s` is exactly one complete JSON value
// (objects, arrays, strings with escapes, numbers, literals). Used by the
// schema sanity tests to prove every writer emits well-formed documents;
// not a full parser — values are checked, not materialized.
bool json_valid(std::string_view s);

// Shortest round-trip decimal form of v ("null" for non-finite values,
// which JSON cannot represent).
std::string json_number(double v);

// Parsed JSON document tree. The forensic-replay and profile tooling reads
// back the parcm-*-v1 artifacts the writers above produce, so the library
// needs a reader to match: a small recursive value with object keys kept in
// document order (the writers emit stable-ordered keys; the reader
// preserves them so round-trips are diffable).
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed reads with defaults: never throw, so consumers can probe
  // optional fields of a bundle without a schema in hand.
  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  std::int64_t as_i64(std::int64_t fallback = 0) const;
  const std::string& as_string() const { return string_; }  // "" if not one
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<Member>& members() const { return members_; }

  // Object member lookup (first match); nullptr when absent or not an
  // object. get_or returns a shared null value instead, so lookups chain:
  // doc.get_or("config").get_or("pipeline").as_string().
  const JsonValue* get(std::string_view key) const;
  const JsonValue& get_or(std::string_view key) const;

  // Builders (used by tests to synthesize fixtures).
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<Member> members);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

// Parses exactly one JSON document (same grammar json_valid accepts);
// std::nullopt on malformed input. \uXXXX escapes decode to UTF-8.
std::optional<JsonValue> json_parse(std::string_view s);

// Reads and parses a file; the error string (when non-null) distinguishes
// unreadable paths from malformed documents.
std::optional<JsonValue> json_parse_file(const std::string& path,
                                         std::string* error = nullptr);

class JsonWriter {
 public:
  // pretty = true indents nested scopes by two spaces (used for files meant
  // to be read by humans and chrome://tracing alike).
  explicit JsonWriter(bool pretty = false) : pretty_(pretty) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key of the next value; only valid directly inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::signed_integral<T>) {
      return int_value(static_cast<std::int64_t>(v));
    } else {
      return uint_value(static_cast<std::uint64_t>(v));
    }
  }
  JsonWriter& null();
  // Appends `json` verbatim as the next value (comma/key placement still
  // handled). For embedding an already-rendered sub-document — e.g. a
  // `parcm-metrics-v1` object inside a forensic bundle. The caller vouches
  // that `json` is one well-formed value; pretty-printing does not re-indent
  // it.
  JsonWriter& raw_value(std::string_view json);

  // The document built so far. Valid once every scope is closed.
  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  JsonWriter& int_value(std::int64_t v);
  JsonWriter& uint_value(std::uint64_t v);
  void before_value();
  void newline_indent();

  struct Scope {
    char close;       // '}' or ']'
    bool first = true;
  };
  std::string out_;
  std::vector<Scope> stack_;
  bool pretty_ = false;
  bool pending_key_ = false;
};

}  // namespace parcm::obs
