// Structured metrics for the solver/motion pipeline.
//
// A Registry holds named counters (monotone uint64), gauges (last-written
// double), wall-clock timers (call count + accumulated nanoseconds) and
// latency histograms (fixed log-2 bucketing, mergeable, p50/p90/p99
// summaries). The library reports into the installed global registry
// through the PARCM_OBS_* macros below; hot loops accumulate locally and
// report once per call, so a mutex-protected map is plenty.
//
// Instrumentation call sites compile to nothing when PARCM_OBS_ENABLED is 0
// (set library-wide by the PARCM_OBS=OFF CMake configuration); the classes
// themselves stay available so pipeline/CLI code that *consumes* a registry
// still links — it just observes an empty one.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef PARCM_OBS_ENABLED
#define PARCM_OBS_ENABLED 1
#endif

namespace parcm::obs {

class JsonWriter;

struct TimerStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;

  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  bool operator==(const TimerStat&) const = default;
};

// Fixed log-2-bucketed distribution of uint64 samples (latencies in ns,
// allocation counts, ...). Bucket 0 holds exact zeros; bucket b >= 1 holds
// [2^(b-1), 2^b). Recording is O(1) and allocation-free, merging sums the
// bucket arrays exactly — a histogram merged from per-worker shards equals
// the histogram of the concatenated samples, so batch-driver aggregation
// loses nothing. Percentiles interpolate linearly inside the bucket that
// holds the target rank, clamped to the observed [min, max].
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;

  void record(std::uint64_t value) {
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += value;
    min_ = value < min_ ? value : min_;
    max_ = value > max_ ? value : max_;
  }

  void merge_from(const Histogram& other) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      buckets_[b] += other.buckets_[b];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = other.min_ < min_ ? other.min_ : min_;
    max_ = other.max_ > max_ ? other.max_ : max_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  const std::array<std::uint64_t, kNumBuckets>& buckets() const {
    return buckets_;
  }

  // p in [0, 100]. Deterministic: depends only on the recorded multiset.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }

  bool operator==(const Histogram&) const = default;

  static std::size_t bucket_of(std::uint64_t value) {
    return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  }

  // Rebuilds a histogram from its serialized sparse buckets plus summary
  // fields (the `parcm-metrics-v1` on-disk form). Inverse of the JSON
  // writer up to bucket resolution: a from_serialized histogram merges and
  // ranks exactly like the original.
  static Histogram from_serialized(
      const std::vector<std::pair<std::size_t, std::uint64_t>>& buckets,
      std::uint64_t sum, std::uint64_t min, std::uint64_t max);

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

class CounterBaseline;

class Registry {
 public:
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  void add_timer_ns(std::string_view name, std::uint64_t ns);
  void record_hist(std::string_view name, std::uint64_t value);
  // Shard re-emission: fold an already-aggregated histogram/timer into the
  // named entry (exact bucket sums, same as merge_from but per-metric).
  // Used when a phase measured into per-worker registries and wants the
  // result visible in the ambient one.
  void merge_hist(std::string_view name, const Histogram& shard);
  void add_timer_stat(std::string_view name, const TimerStat& stat);

  // Snapshots, lexicographically ordered by name (stable across runs).
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, TimerStat> timers() const;
  std::map<std::string, Histogram> histograms() const;

  // Single counter value; 0 when absent.
  std::uint64_t counter(std::string_view name) const;
  // Single histogram snapshot; empty (count 0) when absent.
  Histogram histogram(std::string_view name) const;

  // Adds every metric of `other` into this registry: counters, timers and
  // histograms sum, gauges take `other`'s value. The batch driver uses this
  // to drain per-worker registries into one aggregate; histogram merges are
  // exact, not approximated.
  void merge_from(const Registry& other);

  void clear();
  bool empty() const;

  // Aligned human-readable table of every metric.
  std::string to_string() const;

  // {"schema":"parcm-metrics-v1","counters":{...},"gauges":{...},
  // "timers":{"name":{"count":..,"total_ms":..}},"histograms":{"name":
  // {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,
  // "p99":..}}} — keys sorted, suitable for machine diffing.
  void write_json(JsonWriter& w) const;
  std::string to_json(bool pretty = false) const;

 private:
  friend class CounterBaseline;

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, TimerStat, std::less<>> timers_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Reusable, allocation-light baseline for measuring which counters a code
// region moved. `Registry::counters()` copies the whole map — one node plus
// one string allocation per entry — so measuring per-pass deltas that way
// makes the caller's allocation profile scale with how many counters the
// registry has accumulated (in the batch driver, allocs-per-program grew
// with worker tenure). A baseline instead records pointers to the
// registry's own map keys (std::map nodes are pointer-stable under
// insertion) next to the observed values; re-snapshotting reuses the entry
// vector, so a steady-state caller pays zero allocations per measurement.
//
// Constraint: deltas_since() assumes no counter was erased since
// snapshot() — Registry only removes counters via clear(), so any region
// that does not clear the registry is safe.
class CounterBaseline {
 public:
  // Records the current counter values of `r`, dropping previous contents.
  void snapshot(const Registry& r);

  // For every counter of `r` that changed (or appeared) since snapshot(),
  // adds (name, delta) into `out`.
  void deltas_since(const Registry& r,
                    std::map<std::string, std::uint64_t>* out) const;

 private:
  std::vector<std::pair<const std::string*, std::uint64_t>> entries_;
};

// The registry the macros report into: the calling thread's override when
// one is installed (set_thread_registry), else the process-global one.
Registry& registry();

// Injects `r` as the global registry (nullptr restores the default);
// returns the previously installed one. Used by tests and by callers that
// want an isolated measurement window.
Registry* set_registry(Registry* r);

// Installs `r` as this thread's registry override (nullptr removes it);
// returns the previous override. Worker threads of the batch driver each
// install their own registry so counters accumulate contention-free and can
// be merged deterministically on drain; registry() keeps resolving to the
// process-global instance on threads without an override.
Registry* set_thread_registry(Registry* r);

namespace detail {
// Implemented in trace.cpp: forwards to the global TraceSink when tracing
// is enabled. Returns a span handle, -1 when disabled.
int trace_begin(std::string_view name);
void trace_end(int span);
}  // namespace detail

// RAII wall-clock timer: accumulates into registry().timers()[name] and
// opens a span in the global trace sink while alive.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : name_(name),
        span_(detail::trace_begin(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    registry().add_timer_ns(name_, static_cast<std::uint64_t>(ns));
    detail::trace_end(span_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  int span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace parcm::obs

#define PARCM_OBS_CONCAT_IMPL(a, b) a##b
#define PARCM_OBS_CONCAT(a, b) PARCM_OBS_CONCAT_IMPL(a, b)

#if PARCM_OBS_ENABLED
#define PARCM_OBS_COUNT(name, delta) \
  ::parcm::obs::registry().add_counter((name), (delta))
#define PARCM_OBS_GAUGE(name, value) \
  ::parcm::obs::registry().set_gauge((name), (value))
#define PARCM_OBS_TIMER(name) \
  ::parcm::obs::ScopedTimer PARCM_OBS_CONCAT(parcm_obs_timer_, __LINE__)(name)
#define PARCM_OBS_HIST(name, value) \
  ::parcm::obs::registry().record_hist((name), (value))
#else
#define PARCM_OBS_COUNT(name, delta) ((void)0)
#define PARCM_OBS_GAUGE(name, value) ((void)0)
#define PARCM_OBS_TIMER(name) ((void)0)
#define PARCM_OBS_HIST(name, value) ((void)0)
#endif
