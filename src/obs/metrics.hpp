// Structured metrics for the solver/motion pipeline.
//
// A Registry holds named counters (monotone uint64), gauges (last-written
// double) and wall-clock timers (call count + accumulated nanoseconds). The
// library reports into the installed global registry through the
// PARCM_OBS_* macros below; hot loops accumulate locally and report once
// per call, so a mutex-protected map is plenty.
//
// Instrumentation call sites compile to nothing when PARCM_OBS_ENABLED is 0
// (set library-wide by the PARCM_OBS=OFF CMake configuration); the classes
// themselves stay available so pipeline/CLI code that *consumes* a registry
// still links — it just observes an empty one.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#ifndef PARCM_OBS_ENABLED
#define PARCM_OBS_ENABLED 1
#endif

namespace parcm::obs {

class JsonWriter;

struct TimerStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;

  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  bool operator==(const TimerStat&) const = default;
};

class Registry {
 public:
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  void add_timer_ns(std::string_view name, std::uint64_t ns);

  // Snapshots, lexicographically ordered by name (stable across runs).
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, TimerStat> timers() const;

  // Single counter value; 0 when absent.
  std::uint64_t counter(std::string_view name) const;

  // Adds every metric of `other` into this registry: counters and timers
  // sum, gauges take `other`'s value. The batch driver uses this to drain
  // per-worker registries into one aggregate.
  void merge_from(const Registry& other);

  void clear();
  bool empty() const;

  // Aligned human-readable table of every metric.
  std::string to_string() const;

  // {"counters":{...},"gauges":{...},"timers":{"name":{"count":..,
  // "total_ms":..}}} — keys sorted, suitable for machine diffing.
  void write_json(JsonWriter& w) const;
  std::string to_json(bool pretty = false) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, TimerStat, std::less<>> timers_;
};

// The registry the macros report into: the calling thread's override when
// one is installed (set_thread_registry), else the process-global one.
Registry& registry();

// Injects `r` as the global registry (nullptr restores the default);
// returns the previously installed one. Used by tests and by callers that
// want an isolated measurement window.
Registry* set_registry(Registry* r);

// Installs `r` as this thread's registry override (nullptr removes it);
// returns the previous override. Worker threads of the batch driver each
// install their own registry so counters accumulate contention-free and can
// be merged deterministically on drain; registry() keeps resolving to the
// process-global instance on threads without an override.
Registry* set_thread_registry(Registry* r);

namespace detail {
// Implemented in trace.cpp: forwards to the global TraceSink when tracing
// is enabled. Returns a span handle, -1 when disabled.
int trace_begin(std::string_view name);
void trace_end(int span);
}  // namespace detail

// RAII wall-clock timer: accumulates into registry().timers()[name] and
// opens a span in the global trace sink while alive.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : name_(name),
        span_(detail::trace_begin(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    registry().add_timer_ns(name_, static_cast<std::uint64_t>(ns));
    detail::trace_end(span_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  int span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace parcm::obs

#define PARCM_OBS_CONCAT_IMPL(a, b) a##b
#define PARCM_OBS_CONCAT(a, b) PARCM_OBS_CONCAT_IMPL(a, b)

#if PARCM_OBS_ENABLED
#define PARCM_OBS_COUNT(name, delta) \
  ::parcm::obs::registry().add_counter((name), (delta))
#define PARCM_OBS_GAUGE(name, value) \
  ::parcm::obs::registry().set_gauge((name), (value))
#define PARCM_OBS_TIMER(name) \
  ::parcm::obs::ScopedTimer PARCM_OBS_CONCAT(parcm_obs_timer_, __LINE__)(name)
#else
#define PARCM_OBS_COUNT(name, delta) ((void)0)
#define PARCM_OBS_GAUGE(name, value) ((void)0)
#define PARCM_OBS_TIMER(name) ((void)0)
#endif
