#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/diagnostics.hpp"

namespace parcm::obs {

// One thread's span storage. Single-writer: only the bound thread touches
// spans_/open_depth_/dropped_ between bind and unbind, so the hot path
// needs no lock; the sink serializes bind/unbind/snapshot under its mutex
// and snapshots only run after writers unbound (lifecycle asserts).
class SpanBuffer {
 public:
  SpanBuffer(std::string track, std::size_t capacity, std::size_t seq)
      : track_(std::move(track)), capacity_(capacity), seq_(seq) {
    spans_.reserve(capacity_);
  }

  int begin(std::string_view name, std::uint64_t now) {
    if (spans_.size() >= capacity_) {
      ++dropped_;
      return -1;
    }
    TraceSpan span;
    span.name = std::string(name);
    span.start_ns = now;
    span.depth = open_depth_++;
    spans_.push_back(std::move(span));
    return static_cast<int>(spans_.size()) - 1;
  }

  void end(int span, std::uint64_t now) {
    PARCM_CHECK(span >= 0 && span < static_cast<int>(spans_.size()),
                "trace span handle out of range");
    TraceSpan& s = spans_[static_cast<std::size_t>(span)];
    PARCM_CHECK(s.dur_ns == 0 && s.depth == open_depth_ - 1,
                "trace spans must close LIFO");
    s.dur_ns = now - s.start_ns;
    --open_depth_;
  }

  const std::string& track() const { return track_; }
  const std::vector<TraceSpan>& spans() const { return spans_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t seq() const { return seq_; }
  bool bound() const { return bound_; }
  void set_bound(bool b) { bound_ = b; }

 private:
  std::string track_;
  std::vector<TraceSpan> spans_;
  std::size_t capacity_;
  std::size_t seq_;
  int open_depth_ = 0;
  std::uint64_t dropped_ = 0;
  bool bound_ = false;
};

namespace {

constexpr std::size_t kDefaultSpanCapacity = 1 << 16;

detail::TraceThreadBinding& tl_binding() {
  thread_local detail::TraceThreadBinding binding;
  return binding;
}

// Generations are unique across every TraceSink instance ever constructed,
// not just monotone per instance: a thread binding holds a raw sink
// pointer, and a new sink constructed at a recycled address must never
// validate a stale binding into a freed SpanBuffer.
std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceSink& trace() {
  static TraceSink sink;
  return sink;
}

namespace detail {

int trace_begin(std::string_view name) {
  TraceSink& t = trace();
  return t.enabled() ? t.begin(name) : -1;
}

void trace_end(int span) {
  if (span >= 0) trace().end(span);
}

}  // namespace detail

std::string current_trace_track() {
  const detail::TraceThreadBinding& b = tl_binding();
  if (b.sink != &trace() || b.buffer == nullptr) return {};
  return b.buffer->track();
}

TraceSink::TraceSink()
    : epoch_(std::chrono::steady_clock::now()),
      span_capacity_(kDefaultSpanCapacity) {
  generation_.store(next_generation(), std::memory_order_relaxed);
}

TraceSink::~TraceSink() = default;

std::uint64_t TraceSink::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceSink::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  if (enabled) {
    // Owner adoption must not race in-flight workers: enable the sink
    // before spawning threads that bind buffers (and after joining the
    // previous batch's workers).
    PARCM_CHECK(scoped_bindings_ == 0,
                "TraceSink::set_enabled(true) with live thread bindings — "
                "enable tracing before spawning worker threads");
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  enabled_.store(enabled, std::memory_order_release);
}

void TraceSink::set_span_capacity(std::size_t spans) {
  std::lock_guard<std::mutex> lock(mu_);
  span_capacity_ = std::max<std::size_t>(1, spans);
}

SpanBuffer* TraceSink::acquire_buffer_locked(std::string_view track) {
  // Revive an unbound buffer of the same track so repeated binds (one
  // async solve after another, scaling reruns) reuse storage instead of
  // registering a fresh buffer each time.
  for (auto& buf : buffers_) {
    if (!buf->bound() && buf->track() == track) {
      buf->set_bound(true);
      return buf.get();
    }
  }
  buffers_.push_back(std::make_unique<SpanBuffer>(
      std::string(track), span_capacity_, buffers_.size()));
  buffers_.back()->set_bound(true);
  return buffers_.back().get();
}

SpanBuffer* TraceSink::current_buffer() {
  detail::TraceThreadBinding& b = tl_binding();
  if (b.sink == this && b.buffer != nullptr &&
      b.generation == generation_.load(std::memory_order_relaxed)) {
    return b.buffer;
  }
  // Unbound (or stale) thread: only the owner self-binds, onto the "main"
  // track; any other thread must hold a TraceThreadScope, so its spans are
  // dropped rather than corrupting someone else's buffer.
  if (owner_.load(std::memory_order_relaxed) != std::this_thread::get_id()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  SpanBuffer* buf = acquire_buffer_locked("main");
  b = {this, buf, generation_.load(std::memory_order_relaxed)};
  return buf;
}

int TraceSink::begin(std::string_view name) {
  SpanBuffer* buf = current_buffer();
  if (buf == nullptr) return -1;
  return buf->begin(name, now_ns());
}

void TraceSink::end(int span) {
  if (span < 0) return;  // begin() dropped the span (full buffer / unbound)
  SpanBuffer* buf = current_buffer();
  if (buf == nullptr) return;  // binding went stale between begin and end
  buf->end(span, now_ns());
}

detail::TraceThreadBinding TraceSink::bind_current_thread(
    std::string_view track) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanBuffer* buf = acquire_buffer_locked(track);
  ++scoped_bindings_;
  detail::TraceThreadBinding previous = tl_binding();
  tl_binding() = {this, buf,
                  generation_.load(std::memory_order_relaxed)};
  return previous;
}

void TraceSink::unbind_current_thread(
    const detail::TraceThreadBinding& previous) {
  std::lock_guard<std::mutex> lock(mu_);
  detail::TraceThreadBinding& b = tl_binding();
  if (b.sink == this && b.buffer != nullptr &&
      b.generation == generation_.load(std::memory_order_relaxed)) {
    b.buffer->set_bound(false);
  }
  PARCM_CHECK(scoped_bindings_ > 0, "trace thread scope unbalanced");
  --scoped_bindings_;
  tl_binding() = previous;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  PARCM_CHECK(scoped_bindings_ == 0,
              "TraceSink::clear with live thread bindings — join worker "
              "threads before clearing the trace");
  buffers_.clear();
  // Stale thread-local bindings (including the owner's own) now fail the
  // generation check instead of dangling into freed buffers.
  generation_.store(next_generation(), std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

std::vector<std::string> TraceSink::tracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& buf : buffers_) names.push_back(buf->track());
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->dropped();
  return total;
}

std::vector<TraceSpan> TraceSink::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  struct Key {
    std::string_view track;
    std::uint64_t start_ns;
    std::size_t buffer_seq;
    std::size_t index;
  };
  std::vector<std::pair<Key, const TraceSpan*>> items;
  for (const auto& buf : buffers_) {
    const auto& spans = buf->spans();
    for (std::size_t i = 0; i < spans.size(); ++i) {
      items.push_back({{buf->track(), spans[i].start_ns, buf->seq(), i},
                       &spans[i]});
    }
  }
  // Deterministic merge: by (track, start_ns, buffer registration, index).
  // start_ns alone can tie at clock resolution; buffer/index break the tie
  // in begin order.
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) {
              if (a.first.track != b.first.track)
                return a.first.track < b.first.track;
              if (a.first.start_ns != b.first.start_ns)
                return a.first.start_ns < b.first.start_ns;
              if (a.first.buffer_seq != b.first.buffer_seq)
                return a.first.buffer_seq < b.first.buffer_seq;
              return a.first.index < b.first.index;
            });
  std::vector<TraceSpan> out;
  out.reserve(items.size());
  for (const auto& [key, span] : items) {
    out.push_back(*span);
    out.back().track = std::string(key.track);
  }
  return out;
}

std::string TraceSink::tree() const {
  std::vector<TraceSpan> spans = this->spans();
  std::vector<std::string> tracks = this->tracks();
  std::ostringstream os;
  os << "trace (" << spans.size() << " span"
     << (spans.size() == 1 ? "" : "s");
  if (tracks.size() > 1) os << ", " << tracks.size() << " tracks";
  os << ")\n";
  // Spans arrive grouped per track in begin order, so printing in order
  // with depth indentation reproduces each track's call tree.
  std::size_t width = 0;
  for (const TraceSpan& s : spans) {
    width = std::max(width,
                     2 * static_cast<std::size_t>(s.depth) + s.name.size());
  }
  std::string current_track;
  for (const TraceSpan& s : spans) {
    if (tracks.size() > 1 && s.track != current_track) {
      current_track = s.track;
      os << "track " << current_track << ":\n";
    }
    std::string label(2 * static_cast<std::size_t>(s.depth) + 2, ' ');
    label += s.name;
    os << label << std::string(width + 4 - label.size(), ' ');
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%10.3f ms",
                  static_cast<double>(s.dur_ns) / 1e6);
    os << buf << "\n";
  }
  return os.str();
}

void TraceSink::write_chrome_json(JsonWriter& w) const {
  std::vector<TraceSpan> spans = this->spans();
  std::vector<std::string> tracks = this->tracks();
  std::map<std::string, int> tid_of;
  for (const std::string& t : tracks) {
    tid_of.emplace(t, static_cast<int>(tid_of.size()));
  }
  w.begin_object();
  w.key("schema").value("parcm-trace-v1");
  w.key("traceEvents").begin_array();
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(0);
  w.key("tid").value(0);
  w.key("args").begin_object();
  w.key("name").value("parcm");
  w.end_object();
  w.end_object();
  for (const std::string& t : tracks) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(0);
    w.key("tid").value(tid_of.at(t));
    w.key("args").begin_object();
    w.key("name").value(t);
    w.end_object();
    w.end_object();
  }
  for (const TraceSpan& s : spans) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("cat").value("parcm");
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(s.start_ns) / 1e3);  // microseconds
    w.key("dur").value(static_cast<double>(s.dur_ns) / 1e3);
    w.key("pid").value(0);
    w.key("tid").value(tid_of.at(s.track));
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
}

std::string TraceSink::chrome_json(bool pretty) const {
  JsonWriter w(pretty);
  write_chrome_json(w);
  return w.take();
}

TraceThreadScope::TraceThreadScope(std::string_view track) {
  TraceSink& t = trace();
  if (!t.enabled() || track.empty()) return;
  sink_ = &t;
  previous_ = t.bind_current_thread(track);
}

TraceThreadScope::~TraceThreadScope() {
  if (sink_ != nullptr) sink_->unbind_current_thread(previous_);
}

}  // namespace parcm::obs
