#include "obs/trace.hpp"

#include <cstdio>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/diagnostics.hpp"

namespace parcm::obs {

TraceSink& trace() {
  static TraceSink sink;
  return sink;
}

namespace detail {

int trace_begin(std::string_view name) {
  TraceSink& t = trace();
  return t.enabled() && t.owned_by_caller() ? t.begin(name) : -1;
}

void trace_end(int span) {
  if (span >= 0) trace().end(span);
}

}  // namespace detail

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceSink::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

int TraceSink::begin(std::string_view name) {
  TraceSpan span;
  span.name = std::string(name);
  span.start_ns = now_ns();
  span.depth = open_depth_++;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void TraceSink::end(int span) {
  PARCM_CHECK(span >= 0 && span < static_cast<int>(spans_.size()),
              "trace span handle out of range");
  TraceSpan& s = spans_[static_cast<std::size_t>(span)];
  PARCM_CHECK(s.dur_ns == 0 && s.depth == open_depth_ - 1,
              "trace spans must close LIFO");
  s.dur_ns = now_ns() - s.start_ns;
  --open_depth_;
}

void TraceSink::clear() {
  spans_.clear();
  open_depth_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

std::string TraceSink::tree() const {
  std::ostringstream os;
  os << "trace (" << spans_.size() << " span"
     << (spans_.size() == 1 ? "" : "s") << ")\n";
  // Spans were pushed in pre-order, so printing in order with depth
  // indentation reproduces the call tree.
  std::size_t width = 0;
  for (const TraceSpan& s : spans_) {
    width = std::max(width, 2 * static_cast<std::size_t>(s.depth) + s.name.size());
  }
  for (const TraceSpan& s : spans_) {
    std::string label(2 * static_cast<std::size_t>(s.depth) + 2, ' ');
    label += s.name;
    os << label << std::string(width + 4 - label.size(), ' ');
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%10.3f ms",
                  static_cast<double>(s.dur_ns) / 1e6);
    os << buf << "\n";
  }
  return os.str();
}

void TraceSink::write_chrome_json(JsonWriter& w) const {
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceSpan& s : spans_) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("cat").value("parcm");
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(s.start_ns) / 1e3);  // microseconds
    w.key("dur").value(static_cast<double>(s.dur_ns) / 1e3);
    w.key("pid").value(0);
    w.key("tid").value(0);
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
}

std::string TraceSink::chrome_json(bool pretty) const {
  JsonWriter w(pretty);
  write_chrome_json(w);
  return w.take();
}

}  // namespace parcm::obs
