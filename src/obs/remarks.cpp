#include "obs/remarks.hpp"

#include <algorithm>
#include <sstream>

#include "obs/json.hpp"

namespace parcm::obs {

namespace {

RemarkSink default_sink;
std::atomic<RemarkSink*> current_sink{&default_sink};
thread_local RemarkSink* thread_sink = nullptr;

}  // namespace

RemarkSink& remarks() {
  if (thread_sink) return *thread_sink;
  return *current_sink.load(std::memory_order_acquire);
}

RemarkSink* set_remark_sink(RemarkSink* s) {
  return current_sink.exchange(s ? s : &default_sink,
                               std::memory_order_acq_rel);
}

RemarkSink* set_thread_remark_sink(RemarkSink* s) {
  RemarkSink* prev = thread_sink;
  thread_sink = s;
  return prev;
}

ThreadBindings current_thread_bindings() {
  return ThreadBindings{&registry(), &remarks(), current_trace_track(),
                        thread_foreign_alloc_sink()};
}

const char* remark_kind_name(RemarkKind kind) {
  switch (kind) {
    case RemarkKind::kInserted: return "inserted";
    case RemarkKind::kReplaced: return "replaced";
    case RemarkKind::kBlocked: return "blocked";
    case RemarkKind::kSkipped: return "skipped";
    case RemarkKind::kDegraded: return "degraded";
  }
  return "?";
}

const char* remark_reason_id(RemarkReason r) {
  switch (r) {
    case RemarkReason::kComputes: return "computes";
    case RemarkReason::kUpSafe: return "up-safe";
    case RemarkReason::kDownSafe: return "down-safe";
    case RemarkReason::kEarliest: return "earliest";
    case RemarkReason::kLatest: return "latest";
    case RemarkReason::kIsolated: return "isolated";
    case RemarkReason::kAnchorSunk: return "anchor-sunk";
    case RemarkReason::kValueDies: return "value-dies";
    case RemarkReason::kEdgePlacement: return "edge-placement";
    case RemarkReason::kBottleneck: return "bottleneck-p1";
    case RemarkReason::kRecursiveSplit: return "recursive-split-p2";
    case RemarkReason::kWitnessDiffers: return "interleaving-witness-p3";
    case RemarkReason::kExported: return "parend-export";
    case RemarkReason::kOperandKilled: return "operand-killed";
    case RemarkReason::kPrivatized: return "privatized-temp";
    case RemarkReason::kBridgeCopy: return "bridge-copy";
    case RemarkReason::kBarrierPhase: return "barrier-phase";
    case RemarkReason::kDeadAssignment: return "dead-assignment";
    case RemarkReason::kPartiallyDead: return "partially-dead";
    case RemarkReason::kContested: return "contested-variable";
    case RemarkReason::kUnprofitable: return "unprofitable";
  }
  return "?";
}

const char* remark_reason_label(RemarkReason r) {
  switch (r) {
    case RemarkReason::kComputes: return "computes the term";
    case RemarkReason::kUpSafe: return "up-safe";
    case RemarkReason::kDownSafe: return "down-safe";
    case RemarkReason::kEarliest: return "earliest";
    case RemarkReason::kLatest: return "latest";
    case RemarkReason::kIsolated:
      return "isolated: temp would serve only its own insertion";
    case RemarkReason::kAnchorSunk: return "anchor sunk to must-use frontier";
    case RemarkReason::kValueDies:
      return "value dies: every continuation kills it before a use";
    case RemarkReason::kEdgePlacement: return "placed on each outgoing edge";
    case RemarkReason::kBottleneck:
      return "bottleneck: would move work into a transparent parallel "
             "component (P1)";
    case RemarkReason::kRecursiveSplit:
      return "recursive-assignment guard: implicit decomposition (P2)";
    case RemarkReason::kWitnessDiffers:
      return "not up-safe_par: per-interleaving witness differs (P3)";
    case RemarkReason::kExported:
      return "statement exports the value across the join (up-safe_par)";
    case RemarkReason::kOperandKilled:
      return "computes the term but assigns one of its operands";
    case RemarkReason::kPrivatized:
      return "component-private temporary: sibling modifies an operand";
    case RemarkReason::kBridgeCopy:
      return "zero-cost bridge copy across the component boundary";
    case RemarkReason::kBarrierPhase:
      return "anticipability cut at a synchronization barrier";
    case RemarkReason::kDeadAssignment:
      return "dead: no interleaving reads the value before overwrite";
    case RemarkReason::kPartiallyDead:
      return "partially dead: sunk to its use frontier";
    case RemarkReason::kContested:
      return "contested variable: potentially-parallel access";
    case RemarkReason::kUnprofitable: return "unprofitable: no path improves";
  }
  return "?";
}

const char* remark_reason_pitfall(RemarkReason r) {
  switch (r) {
    case RemarkReason::kBottleneck: return "P1";
    case RemarkReason::kRecursiveSplit: return "P2";
    case RemarkReason::kWitnessDiffers: return "P3";
    default: return nullptr;
  }
}

std::string remark_to_string(const Remark& r) {
  std::ostringstream os;
  if (r.node >= 0) os << "n" << r.node << " ";
  os << "[" << remark_kind_name(r.kind) << "]";
  if (!r.pass.empty()) os << " " << r.pass;
  if (!r.term.empty()) {
    os << " `" << r.term << "`";
  } else if (r.term_index >= 0) {
    os << " t" << r.term_index;
  }
  os << ": " << r.message;
  if (!r.reasons.empty()) {
    os << " (";
    for (std::size_t i = 0; i < r.reasons.size(); ++i) {
      if (i) os << " ∧ ";
      os << remark_reason_label(r.reasons[i]);
    }
    os << ")";
  }
  if (!r.detail.empty()) os << " — " << r.detail;
  return os.str();
}

void RemarkSink::emit(Remark r) {
  std::lock_guard<std::mutex> lock(mu_);
  if (r.pass.empty()) r.pass = pass_;
  remarks_.push_back(std::move(r));
}

void RemarkSink::emit_batch(std::vector<Remark>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  // Keep geometric growth: reserving to the exact size on every batch
  // would reallocate once per batch.
  std::size_t need = remarks_.size() + batch.size();
  if (remarks_.capacity() < need) {
    remarks_.reserve(std::max(need, remarks_.size() * 2));
  }
  for (Remark& r : batch) {
    if (r.pass.empty()) r.pass = pass_;
    remarks_.push_back(std::move(r));
  }
  batch.clear();
}

std::string RemarkSink::set_pass(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string prev = std::move(pass_);
  pass_ = std::move(name);
  return prev;
}

std::string RemarkSink::pass() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pass_;
}

std::uint64_t RemarkSink::next_epoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void RemarkSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  remarks_.clear();
  epoch_.store(next_epoch(), std::memory_order_release);
}

bool RemarkSink::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remarks_.empty();
}

std::size_t RemarkSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remarks_.size();
}

std::vector<Remark> RemarkSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remarks_;
}

std::string RemarkSink::to_string() const {
  std::ostringstream os;
  for (const Remark& r : snapshot()) os << remark_to_string(r) << "\n";
  return os.str();
}

void RemarkSink::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("schema").value("parcm-remarks-v1");
  w.key("remarks").begin_array();
  for (const Remark& r : snapshot()) {
    w.begin_object();
    w.key("kind").value(remark_kind_name(r.kind));
    w.key("pass").value(r.pass);
    w.key("node").value(r.node);
    w.key("term_index").value(r.term_index);
    w.key("term").value(r.term);
    w.key("message").value(r.message);
    w.key("reasons").begin_array();
    for (RemarkReason reason : r.reasons) w.value(remark_reason_id(reason));
    w.end_array();
    w.key("pitfalls").begin_array();
    for (RemarkReason reason : r.reasons) {
      if (const char* p = remark_reason_pitfall(reason)) w.value(p);
    }
    w.end_array();
    w.key("detail").value(r.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string RemarkSink::to_json(bool pretty) const {
  JsonWriter w(pretty);
  write_json(w);
  return w.take();
}

}  // namespace parcm::obs
