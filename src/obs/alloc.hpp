// Allocation accounting: a counting global operator new/delete replacement
// that tallies per-thread allocation counts and requested bytes, feeding
// the driver's allocs_per_program metric (the baseline measurement for the
// arena/cache roadmap item).
//
// The hook is compiled only when PARCM_OBS_ALLOC_HOOK is 1 — set by CMake
// for PARCM_OBS=ON builds without sanitizers (ASan/TSan bring their own
// allocator and must keep ownership of operator new). Everywhere else the
// API stays link-compatible and reports zero; alloc_hook_active() tells
// callers and tests which world they are in.
//
// Counters are plain thread_local PODs: the hot path is two increments,
// no locks, no atomics, and safe during thread start-up/teardown.
#pragma once

#include <atomic>
#include <cstdint>

#ifndef PARCM_OBS_ENABLED
#define PARCM_OBS_ENABLED 1
#endif

namespace parcm::obs {

// True when this process counts allocations (hook compiled in).
bool alloc_hook_active();

// Allocations / requested bytes by the calling thread since it started.
// Always 0 when the hook is compiled out.
std::uint64_t thread_alloc_count();
std::uint64_t thread_alloc_bytes();

// Collects allocation counts flushed by helper threads working on the
// owner's behalf. The per-thread counters above cannot see work a
// ThreadBindingsScope hands to a std::async helper — which made the
// driver's allocs_per_program depend on how the safety solver happened to
// split work across threads. The spawning thread installs a sink
// (set_thread_foreign_alloc_sink); every ThreadBindingsScope whose bindings
// carry it flushes the helper's delta here on exit, so owner-thread count
// plus sink equals the whole job's allocations regardless of threading.
class ForeignAllocSink {
 public:
  void add(std::uint64_t allocs, std::uint64_t bytes) {
    allocs_.fetch_add(allocs, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  std::uint64_t allocs() const {
    return allocs_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

// The calling thread's foreign-allocation sink (nullptr when none);
// current_thread_bindings() captures it alongside registry and remarks.
ForeignAllocSink* thread_foreign_alloc_sink();
// Installs `s` for this thread (nullptr removes it); returns the previous
// value.
ForeignAllocSink* set_thread_foreign_alloc_sink(ForeignAllocSink* s);

#if PARCM_OBS_ENABLED

// RAII window over the calling thread's allocation counters: allocs() and
// bytes() report the delta since construction. Only meaningful on the
// thread that constructed it.
class AllocCounterScope {
 public:
  AllocCounterScope();
  std::uint64_t allocs() const;
  std::uint64_t bytes() const;

 private:
  std::uint64_t start_allocs_;
  std::uint64_t start_bytes_;
};

#else  // !PARCM_OBS_ENABLED

namespace detail {
// Stateless stand-in so PARCM_OBS=OFF call sites compile to nothing; a
// distinct type (not an #ifdef'd body) keeps the mangled names of the two
// variants apart when an OFF translation unit links an ON library.
struct NullAllocCounterScope {
  std::uint64_t allocs() const { return 0; }
  std::uint64_t bytes() const { return 0; }
};
}  // namespace detail
using AllocCounterScope = detail::NullAllocCounterScope;

#endif  // PARCM_OBS_ENABLED

}  // namespace parcm::obs
