// Allocation accounting: a counting global operator new/delete replacement
// that tallies per-thread allocation counts and requested bytes, feeding
// the driver's allocs_per_program metric (the baseline measurement for the
// arena/cache roadmap item).
//
// The hook is compiled only when PARCM_OBS_ALLOC_HOOK is 1 — set by CMake
// for PARCM_OBS=ON builds without sanitizers (ASan/TSan bring their own
// allocator and must keep ownership of operator new). Everywhere else the
// API stays link-compatible and reports zero; alloc_hook_active() tells
// callers and tests which world they are in.
//
// Counters are plain thread_local PODs: the hot path is two increments,
// no locks, no atomics, and safe during thread start-up/teardown.
#pragma once

#include <cstdint>

#ifndef PARCM_OBS_ENABLED
#define PARCM_OBS_ENABLED 1
#endif

namespace parcm::obs {

// True when this process counts allocations (hook compiled in).
bool alloc_hook_active();

// Allocations / requested bytes by the calling thread since it started.
// Always 0 when the hook is compiled out.
std::uint64_t thread_alloc_count();
std::uint64_t thread_alloc_bytes();

#if PARCM_OBS_ENABLED

// RAII window over the calling thread's allocation counters: allocs() and
// bytes() report the delta since construction. Only meaningful on the
// thread that constructed it.
class AllocCounterScope {
 public:
  AllocCounterScope();
  std::uint64_t allocs() const;
  std::uint64_t bytes() const;

 private:
  std::uint64_t start_allocs_;
  std::uint64_t start_bytes_;
};

#else  // !PARCM_OBS_ENABLED

namespace detail {
// Stateless stand-in so PARCM_OBS=OFF call sites compile to nothing; a
// distinct type (not an #ifdef'd body) keeps the mangled names of the two
// variants apart when an OFF translation unit links an ON library.
struct NullAllocCounterScope {
  std::uint64_t allocs() const { return 0; }
  std::uint64_t bytes() const { return 0; }
};
}  // namespace detail
using AllocCounterScope = detail::NullAllocCounterScope;

#endif  // PARCM_OBS_ENABLED

}  // namespace parcm::obs
