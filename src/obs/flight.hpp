// Flight recorder: a per-thread lock-free ring buffer of the most recent
// structured events, kept for post-hoc forensics.
//
// Where the trace sink records *everything* (and drops when full), the
// flight recorder deliberately forgets: each thread writes fixed-size
// events into a bounded ring that wraps, so at any moment the recorder
// holds the last N things each thread did — pass starts/ends, solver
// seeds, cache probes, RNG stream positions, program ids — in O(threads ×
// capacity) memory no matter how long the process runs. When a program
// times out, throws, or the differential oracle diverges, the failure path
// snapshots the rings into the forensic bundle; in steady state the
// recorder costs one relaxed atomic load per call site when disabled and a
// handful of relaxed stores when enabled.
//
// Concurrency design: each ring has exactly one writer (the thread that
// auto-bound it on its first record); readers may snapshot from any thread
// at any time — including a failure path that fires while other workers
// are still recording — so every event slot is a seqlock of plain atomics:
// the writer bumps the slot's sequence to odd, stores the payload fields
// relaxed, then publishes the even sequence with release; a reader that
// observes an odd or changed sequence discards the slot instead of
// returning a torn event. No mutex sits on the record path; binding a new
// thread's ring and snapshotting take the registry mutex. clear() bumps a
// generation so stale thread bindings die instead of dangling (the same
// guard the trace sink uses).
//
// Compiled out with the rest of the observability layer: the
// PARCM_OBS_FLIGHT macro is a no-op when PARCM_OBS_ENABLED is 0; the
// classes stay linked so bundle consumers build either way.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"  // PARCM_OBS_ENABLED

namespace parcm::obs {

class JsonWriter;

enum class FlightKind : std::uint8_t {
  kPassStart,     // a: nodes before          label: pass name
  kPassEnd,       // a: wall ns, b: actions   label: pass name
  kSolverSeed,    // a: seeded entries, b: region count
  kCacheProbe,    // a: structural hash, b: 1 hit / 0 miss
  kRngStream,     // a: seed/stream position, b: index in stream
  kProgramBegin,  // a: manifest index         label: program id
  kProgramEnd,    // a: manifest index, b: status ordinal
  kOracleVerdict, // a: original behaviours, b: transformed behaviours
  kNote,          // free-form breadcrumb
};

// Stable kebab-case id ("pass-start", ...), used by bundle JSON.
const char* flight_kind_name(FlightKind k);

struct FlightEvent {
  FlightKind kind = FlightKind::kNote;
  std::string track;      // owning ring's track name
  std::uint64_t seq = 0;  // per-ring monotone event number
  std::uint64_t t_ns = 0; // relative to the recorder's epoch
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string label;      // truncated to kLabelBytes at record time
};

namespace detail {
class FlightRing;
struct FlightThreadBinding {
  const void* recorder = nullptr;
  FlightRing* ring = nullptr;
  std::uint64_t generation = 0;
};
}  // namespace detail

class FlightRecorder {
 public:
  // Payload label capacity per event; longer labels truncate. Big enough
  // for every pass/status name in the tree ("differential-validate" is the
  // longest customer at 21 bytes).
  static constexpr std::size_t kLabelBytes = 24;

  FlightRecorder();
  ~FlightRecorder();

  void set_enabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Ring capacity in events for rings bound afterwards (default 256).
  void set_capacity(std::size_t events);

  // Records into the calling thread's ring, auto-binding one on first use
  // (named "flight-<n>" in bind order, or after the thread's trace track
  // when it has one). No-op while disabled.
  void record(FlightKind kind, std::string_view label = {},
              std::uint64_t a = 0, std::uint64_t b = 0);

  // Deterministically ordered copy of every ring's surviving events,
  // oldest first per ring, rings in bind order. Safe to call from a
  // failure path while other threads keep recording: torn slots are
  // skipped, not returned.
  std::vector<FlightEvent> snapshot() const;
  // Only the calling thread's ring (the usual forensic-bundle view: the
  // history of the worker that failed). Empty when the thread never
  // recorded.
  std::vector<FlightEvent> snapshot_current_thread() const;

  // Total events ever recorded (survivors + overwritten).
  std::uint64_t total_recorded() const;

  // Drops every ring and restarts the epoch; stale thread bindings are
  // invalidated by generation.
  void clear();

  // ["events" array writer for bundles]: {kind, track, seq, t_ns, a, b,
  // label} per event.
  static void write_events_json(const std::vector<FlightEvent>& events,
                                JsonWriter& w);

 private:
  detail::FlightRing* current_ring();
  std::uint64_t now_ns() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{1};
  // Steady-clock ns at construction/clear; atomic because clear() restarts
  // the epoch while other threads may be stamping events.
  std::atomic<std::uint64_t> epoch_ns_{0};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<detail::FlightRing>> rings_;
  std::size_t capacity_;
};

// The process-global recorder the macro records into.
FlightRecorder& flight();

}  // namespace parcm::obs

#if PARCM_OBS_ENABLED
#define PARCM_OBS_FLIGHT(kind, label, a, b)                       \
  do {                                                            \
    ::parcm::obs::FlightRecorder& parcm_obs_fr =                  \
        ::parcm::obs::flight();                                   \
    if (parcm_obs_fr.enabled()) {                                 \
      parcm_obs_fr.record((kind), (label), (a), (b));             \
    }                                                             \
  } while (0)
#else
#define PARCM_OBS_FLIGHT(kind, label, a, b) ((void)0)
#endif
