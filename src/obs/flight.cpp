#include "obs/flight.hpp"

#include <algorithm>
#include <cstring>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace parcm::obs {

namespace detail {

// One thread's event ring. Single writer (the bound thread); any thread may
// read concurrently via the per-slot seqlock, so every field a reader
// touches is an atomic accessed relaxed between the seq acquire/release
// pair — no plain loads race with the writer.
class FlightRing {
 public:
  static constexpr std::size_t kLabelWords =
      FlightRecorder::kLabelBytes / sizeof(std::uint64_t);

  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // odd = write in progress
    std::atomic<std::uint64_t> event_seq{0};
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint8_t> label_len{0};
    std::array<std::atomic<std::uint64_t>, kLabelWords> label{};
  };

  FlightRing(std::string track, std::size_t capacity, std::size_t bind_seq)
      : track_(std::move(track)),
        slots_(capacity),
        bind_seq_(bind_seq) {}

  void record(FlightKind kind, std::string_view label, std::uint64_t a,
              std::uint64_t b, std::uint64_t t_ns) {
    const std::uint64_t event = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[event % slots_.size()];
    const std::uint64_t s0 = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(s0 + 1, std::memory_order_relaxed);  // odd: in progress
    // Payload stores must not reorder before the odd mark: a reader that
    // observes any of them must find seq odd (or already advanced) when it
    // rechecks.
    std::atomic_thread_fence(std::memory_order_release);
    slot.event_seq.store(event, std::memory_order_relaxed);
    slot.t_ns.store(t_ns, std::memory_order_relaxed);
    slot.a.store(a, std::memory_order_relaxed);
    slot.b.store(b, std::memory_order_relaxed);
    slot.kind.store(static_cast<std::uint8_t>(kind),
                    std::memory_order_relaxed);
    const std::size_t len =
        std::min<std::size_t>(label.size(), FlightRecorder::kLabelBytes);
    slot.label_len.store(static_cast<std::uint8_t>(len),
                         std::memory_order_relaxed);
    std::array<std::uint64_t, kLabelWords> words{};
    if (len > 0) std::memcpy(words.data(), label.data(), len);
    for (std::size_t w = 0; w < kLabelWords; ++w) {
      slot.label[w].store(words[w], std::memory_order_relaxed);
    }
    slot.seq.store(s0 + 2, std::memory_order_release);  // even: stable
    head_.store(event + 1, std::memory_order_release);
  }

  // Copies every surviving slot whose seqlock reads stable, oldest first.
  // A slot the writer overwrites mid-read fails the seq recheck and is
  // skipped; a slot overwritten *between* head read and slot read simply
  // yields the newer event, which the final sort puts in its place.
  std::vector<FlightEvent> snapshot() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t live = std::min<std::uint64_t>(head, slots_.size());
    std::vector<FlightEvent> out;
    out.reserve(live);
    for (std::uint64_t event = head - live; event < head; ++event) {
      const Slot& slot = slots_[event % slots_.size()];
      FlightEvent ev;
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;
      ev.seq = slot.event_seq.load(std::memory_order_relaxed);
      ev.t_ns = slot.t_ns.load(std::memory_order_relaxed);
      ev.a = slot.a.load(std::memory_order_relaxed);
      ev.b = slot.b.load(std::memory_order_relaxed);
      ev.kind =
          static_cast<FlightKind>(slot.kind.load(std::memory_order_relaxed));
      const std::size_t len = std::min<std::size_t>(
          slot.label_len.load(std::memory_order_relaxed),
          FlightRecorder::kLabelBytes);
      std::array<std::uint64_t, kLabelWords> words{};
      for (std::size_t w = 0; w < kLabelWords; ++w) {
        words[w] = slot.label[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
      if (s1 != s2) continue;  // torn: writer lapped us mid-copy
      ev.label.assign(reinterpret_cast<const char*>(words.data()), len);
      ev.track = track_;
      out.push_back(std::move(ev));
    }
    std::sort(out.begin(), out.end(),
              [](const FlightEvent& x, const FlightEvent& y) {
                return x.seq < y.seq;
              });
    return out;
  }

  const std::string& track() const { return track_; }
  std::size_t bind_seq() const { return bind_seq_; }
  std::uint64_t total() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  std::string track_;
  std::vector<Slot> slots_;
  std::size_t bind_seq_;
  std::atomic<std::uint64_t> head_{0};
};

namespace {

constexpr std::size_t kDefaultCapacity = 256;

FlightThreadBinding& tl_flight_binding() {
  thread_local FlightThreadBinding binding;
  return binding;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Generations are unique across every FlightRecorder instance ever
// constructed, not just monotone per instance: a thread binding holds a
// raw recorder pointer, and a new recorder constructed at a recycled
// address must never validate a stale binding to a freed ring.
std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

}  // namespace detail

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::kPassStart: return "pass-start";
    case FlightKind::kPassEnd: return "pass-end";
    case FlightKind::kSolverSeed: return "solver-seed";
    case FlightKind::kCacheProbe: return "cache-probe";
    case FlightKind::kRngStream: return "rng-stream";
    case FlightKind::kProgramBegin: return "program-begin";
    case FlightKind::kProgramEnd: return "program-end";
    case FlightKind::kOracleVerdict: return "oracle-verdict";
    case FlightKind::kNote: return "note";
  }
  return "note";
}

FlightRecorder::FlightRecorder() : capacity_(detail::kDefaultCapacity) {
  generation_.store(detail::next_generation(), std::memory_order_relaxed);
  epoch_ns_.store(detail::steady_now_ns(), std::memory_order_relaxed);
}

FlightRecorder::~FlightRecorder() = default;

std::uint64_t FlightRecorder::now_ns() const {
  const std::uint64_t now = detail::steady_now_ns();
  const std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  return now >= epoch ? now - epoch : 0;
}

void FlightRecorder::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_release);
}

void FlightRecorder::set_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<std::size_t>(1, events);
}

detail::FlightRing* FlightRecorder::current_ring() {
  detail::FlightThreadBinding& b = detail::tl_flight_binding();
  if (b.recorder == this && b.ring != nullptr &&
      b.generation == generation_.load(std::memory_order_relaxed)) {
    return b.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Name the ring after the thread's trace track when it has one, so
  // forensic events line up with trace spans ("worker-3" in both).
  std::string track = current_trace_track();
  if (track.empty()) track = "flight-" + std::to_string(rings_.size());
  rings_.push_back(std::make_unique<detail::FlightRing>(
      std::move(track), capacity_, rings_.size()));
  b = {this, rings_.back().get(),
       generation_.load(std::memory_order_relaxed)};
  return b.ring;
}

void FlightRecorder::record(FlightKind kind, std::string_view label,
                            std::uint64_t a, std::uint64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  current_ring()->record(kind, label, a, b, now_ns());
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  for (const auto& ring : rings_) {
    std::vector<FlightEvent> events = ring->snapshot();
    out.insert(out.end(), std::make_move_iterator(events.begin()),
               std::make_move_iterator(events.end()));
  }
  return out;
}

std::vector<FlightEvent> FlightRecorder::snapshot_current_thread() const {
  const detail::FlightThreadBinding& b = detail::tl_flight_binding();
  if (b.recorder != this || b.ring == nullptr ||
      b.generation != generation_.load(std::memory_order_relaxed)) {
    return {};
  }
  return b.ring->snapshot();
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->total();
  return total;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  // Stale thread bindings (any thread, including the caller) now fail the
  // generation check and rebind to a fresh ring on next record.
  generation_.store(detail::next_generation(), std::memory_order_relaxed);
  epoch_ns_.store(detail::steady_now_ns(), std::memory_order_relaxed);
}

void FlightRecorder::write_events_json(
    const std::vector<FlightEvent>& events, JsonWriter& w) {
  w.begin_array();
  for (const FlightEvent& ev : events) {
    w.begin_object();
    w.key("kind").value(flight_kind_name(ev.kind));
    w.key("track").value(ev.track);
    w.key("seq").value(ev.seq);
    w.key("t_ns").value(ev.t_ns);
    w.key("a").value(ev.a);
    w.key("b").value(ev.b);
    w.key("label").value(ev.label);
    w.end_object();
  }
  w.end_array();
}

FlightRecorder& flight() {
  static FlightRecorder recorder;
  return recorder;
}

}  // namespace parcm::obs
