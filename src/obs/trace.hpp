// Span-style tracing: nested begin/end events over one wall clock.
//
// The sink is disabled by default and costs a single branch per
// ScopedTimer; when enabled (CLI --trace-json, tests) every PARCM_OBS_TIMER
// scope records a span. Spans can render as an indented human-readable tree
// or export to the Chrome trace_event format, loadable in chrome://tracing
// and https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace parcm::obs {

class JsonWriter;

struct TraceSpan {
  std::string name;
  std::uint64_t start_ns = 0;  // relative to the sink's epoch
  std::uint64_t dur_ns = 0;
  int depth = 0;
};

class TraceSink {
 public:
  TraceSink();

  // Enabling adopts the calling thread as the sink's owner: the span stack
  // is LIFO per thread, so spans opened on other threads (batch-driver
  // workers, the async safety solves) are dropped rather than corrupting
  // the tree — ScopedTimer still feeds their wall time into the registry.
  void set_enabled(bool enabled) {
    if (enabled) owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }
  bool owned_by_caller() const {
    return owner_.load(std::memory_order_relaxed) == std::this_thread::get_id();
  }

  // Opens a span; returns its handle (index). Spans close LIFO — the RAII
  // ScopedTimer guarantees this.
  int begin(std::string_view name);
  void end(int span);

  void clear();
  const std::vector<TraceSpan>& spans() const { return spans_; }

  // Indented tree, one line per span with its wall time.
  std::string tree() const;

  // Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...}]}.
  void write_chrome_json(JsonWriter& w) const;
  std::string chrome_json(bool pretty = true) const;

 private:
  std::uint64_t now_ns() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::thread::id> owner_{};
  int open_depth_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
};

// The process-global sink fed by ScopedTimer.
TraceSink& trace();

}  // namespace parcm::obs
