// Span-style tracing: nested begin/end events over one wall clock, safe to
// feed from many threads at once.
//
// The sink is disabled by default and costs a single branch per
// ScopedTimer; when enabled (CLI --trace-json, tests) every PARCM_OBS_TIMER
// scope records a span. Each thread writes into its own fixed-capacity
// SpanBuffer — thread-local and lock-free on the hot path — registered
// with the sink under a mutex at bind time:
//
//   owner     the thread that called set_enabled(true) self-binds the
//             "main" track lazily on its first span.
//   workers   bind an explicit track ("worker-3") for their lifetime with
//             a TraceThreadScope; the batch driver does this per worker.
//   helpers   obs::ThreadBindingsScope binds "<parent-track>/async" so the
//             std::async safety solves land on their own named track
//             instead of writing into a dead sink.
//
// Lifecycle (enforced with asserts): enable the sink *before* spawning
// worker threads, join them *before* clear(). A buffer that fills up drops
// further spans and counts them (dropped()).
//
// Spans merge deterministically by (track, start_ns, buffer, index) and
// export either as an indented human-readable tree or as a multi-track
// Chrome trace_event file ("parcm-trace-v1", one named track per thread),
// loadable in chrome://tracing and https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace parcm::obs {

class JsonWriter;
class SpanBuffer;
class TraceSink;

struct TraceSpan {
  std::string name;
  std::string track;           // filled in merged snapshots ("main", ...)
  std::uint64_t start_ns = 0;  // relative to the sink's epoch
  std::uint64_t dur_ns = 0;
  int depth = 0;               // nesting depth within its own track
};

namespace detail {
// The calling thread's current buffer binding. Internal: managed by
// TraceThreadScope and the owner's lazy self-bind; a generation mismatch
// (the sink was cleared) invalidates the binding without dangling.
struct TraceThreadBinding {
  const TraceSink* sink = nullptr;
  SpanBuffer* buffer = nullptr;
  std::uint64_t generation = 0;
};
}  // namespace detail

class TraceSink {
 public:
  TraceSink();
  ~TraceSink();

  // Enabling adopts the calling thread as the sink's owner (it self-binds
  // the "main" track on its first span). Must happen before worker threads
  // bind span buffers — asserted, because an owner switch with in-flight
  // writers would race.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  // Per-thread buffer capacity in spans for buffers bound afterwards.
  void set_span_capacity(std::size_t spans);

  // Opens a span on the calling thread's buffer; returns its handle, or -1
  // when the thread is unbound (and not the owner) or the buffer is full.
  // Spans close LIFO per thread — the RAII ScopedTimer guarantees this.
  int begin(std::string_view name);
  void end(int span);

  // Drops every buffer and restarts the epoch. All TraceThreadScopes must
  // have unwound first (asserted); stale thread bindings from before the
  // clear are detected by generation and silently dropped.
  void clear();

  // Deterministic merged snapshot: spans ordered by (track, start_ns,
  // buffer registration, index), each stamped with its track name.
  std::vector<TraceSpan> spans() const;
  // Sorted unique track names with at least one buffer.
  std::vector<std::string> tracks() const;
  // Spans dropped across all buffers (capacity overflow or unbound ends).
  std::uint64_t dropped() const;

  // Indented tree, one line per span with its wall time; one section per
  // track when more than one thread contributed.
  std::string tree() const;

  // Multi-track Chrome trace_event JSON: thread_name metadata per track
  // followed by "X" duration events, tid = track index in sorted order.
  // {"schema":"parcm-trace-v1","traceEvents":[...]}.
  void write_chrome_json(JsonWriter& w) const;
  std::string chrome_json(bool pretty = true) const;

 private:
  friend class TraceThreadScope;

  std::uint64_t now_ns() const;
  // Registers (or revives an unbound buffer of) `track`; mu_ held.
  SpanBuffer* acquire_buffer_locked(std::string_view track);
  // The calling thread's valid buffer, lazily self-binding the owner.
  SpanBuffer* current_buffer();
  detail::TraceThreadBinding bind_current_thread(std::string_view track);
  void unbind_current_thread(const detail::TraceThreadBinding& previous);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{1};
  std::atomic<std::thread::id> owner_{};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpanBuffer>> buffers_;
  std::size_t scoped_bindings_ = 0;  // live TraceThreadScopes
  std::size_t span_capacity_;
};

// RAII track binding against the process-global sink: registers a
// fixed-capacity span buffer for the calling thread under `track` (no-op
// while tracing is disabled or `track` is empty) and restores the previous
// binding on destruction. Worker threads must construct these *after* the
// sink was enabled and destroy them before clear().
class TraceThreadScope {
 public:
  explicit TraceThreadScope(std::string_view track);
  ~TraceThreadScope();
  TraceThreadScope(const TraceThreadScope&) = delete;
  TraceThreadScope& operator=(const TraceThreadScope&) = delete;

  bool active() const { return sink_ != nullptr; }

 private:
  TraceSink* sink_ = nullptr;
  detail::TraceThreadBinding previous_{};
};

// The track the calling thread currently records into on the global sink
// ("" when unbound or tracing is disabled). ThreadBindings uses this to
// hand helper threads a "<track>/async" sub-track.
std::string current_trace_track();

// The process-global sink fed by ScopedTimer.
TraceSink& trace();

}  // namespace parcm::obs
