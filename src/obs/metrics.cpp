#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

#include "obs/json.hpp"

namespace parcm::obs {

namespace {

Registry default_registry;
std::atomic<Registry*> current_registry{&default_registry};
thread_local Registry* thread_registry = nullptr;

}  // namespace

Registry& registry() {
  if (thread_registry) return *thread_registry;
  return *current_registry.load(std::memory_order_acquire);
}

Registry* set_registry(Registry* r) {
  return current_registry.exchange(r ? r : &default_registry,
                                   std::memory_order_acq_rel);
}

Registry* set_thread_registry(Registry* r) {
  Registry* prev = thread_registry;
  thread_registry = r;
  return prev;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 100.0) return static_cast<double>(max_);
  // Rank of the requested quantile in [0, count]; the first bucket whose
  // cumulative count reaches it holds the answer.
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += buckets_[b];
    if (static_cast<double>(cum) >= target) {
      const double lo =
          b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi =
          b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
      const double frac =
          (target - before) / static_cast<double>(buckets_[b]);
      double v = lo + frac * (hi - lo);
      // Bucket edges can overshoot what was actually observed.
      v = std::max(v, static_cast<double>(min()));
      v = std::min(v, static_cast<double>(max_));
      return v;
    }
  }
  return static_cast<double>(max_);
}

Histogram Histogram::from_serialized(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& buckets,
    std::uint64_t sum, std::uint64_t min, std::uint64_t max) {
  Histogram h;
  for (const auto& [bucket, count] : buckets) {
    if (bucket >= kNumBuckets || count == 0) continue;
    h.buckets_[bucket] += count;
    h.count_ += count;
  }
  if (h.count_ > 0) {
    h.sum_ = sum;
    h.min_ = min;
    h.max_ = max;
  }
  return h;
}

void Registry::add_counter(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::add_timer_ns(std::string_view name, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) it = timers_.emplace(std::string(name), TimerStat{}).first;
  it->second.count += 1;
  it->second.total_ns += ns;
}

void Registry::record_hist(std::string_view name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.record(value);
}

void Registry::merge_hist(std::string_view name, const Histogram& shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.merge_from(shard);
}

void Registry::add_timer_stat(std::string_view name, const TimerStat& stat) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), TimerStat{}).first;
  }
  it->second.count += stat.count;
  it->second.total_ns += stat.total_ns;
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, TimerStat> Registry::timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {timers_.begin(), timers_.end()};
}

std::map<std::string, Histogram> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {histograms_.begin(), histograms_.end()};
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Histogram Registry::histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

void CounterBaseline::snapshot(const Registry& r) {
  entries_.clear();
  std::lock_guard<std::mutex> lock(r.mu_);
  entries_.reserve(r.counters_.size());
  for (const auto& [name, value] : r.counters_) {
    entries_.emplace_back(&name, value);
  }
}

void CounterBaseline::deltas_since(
    const Registry& r, std::map<std::string, std::uint64_t>* out) const {
  std::lock_guard<std::mutex> lock(r.mu_);
  // Merge join on the map nodes themselves: baseline keys are a subset of
  // the current keys (counters are never erased individually) and both
  // sequences are in map order, so a pointer compare suffices — no string
  // comparisons, no temporary map.
  auto base = entries_.begin();
  for (const auto& [name, value] : r.counters_) {
    std::uint64_t before = 0;
    if (base != entries_.end() && base->first == &name) {
      before = base->second;
      ++base;
    }
    if (value != before) (*out)[name] += value - before;
  }
}

void Registry::merge_from(const Registry& other) {
  // Snapshot first: locking both registries at once invites deadlock, and
  // merge sources are quiescent per-worker registries anyway.
  auto counters = other.counters();
  auto gauges = other.gauges();
  auto timers = other.timers();
  auto histograms = other.histograms();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : counters) counters_[k] += v;
  for (const auto& [k, v] : gauges) gauges_[k] = v;
  for (const auto& [k, v] : timers) {
    TimerStat& t = timers_[k];
    t.count += v.count;
    t.total_ns += v.total_ns;
  }
  for (const auto& [k, v] : histograms) histograms_[k].merge_from(v);
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && timers_.empty() &&
         histograms_.empty();
}

std::string Registry::to_string() const {
  auto counters = this->counters();
  auto gauges = this->gauges();
  auto timers = this->timers();
  auto histograms = this->histograms();

  std::size_t width = 0;
  for (const auto& [k, v] : counters) width = std::max(width, k.size());
  for (const auto& [k, v] : gauges) width = std::max(width, k.size());
  for (const auto& [k, v] : timers) width = std::max(width, k.size());
  for (const auto& [k, v] : histograms) width = std::max(width, k.size());

  std::ostringstream os;
  auto pad = [&](const std::string& k) {
    os << "  " << k << std::string(width - k.size() + 2, ' ');
  };
  if (!counters.empty()) {
    os << "counters:\n";
    for (const auto& [k, v] : counters) {
      pad(k);
      os << v << "\n";
    }
  }
  if (!gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [k, v] : gauges) {
      pad(k);
      os << json_number(v) << "\n";
    }
  }
  if (!timers.empty()) {
    os << "timers:" << std::string(width > 5 ? width - 5 : 1, ' ')
       << "  calls     total ms\n";
    for (const auto& [k, v] : timers) {
      pad(k);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%7llu %12.3f",
                    static_cast<unsigned long long>(v.count), v.total_ms());
      os << buf << "\n";
    }
  }
  if (!histograms.empty()) {
    os << "histograms:" << std::string(width > 9 ? width - 9 : 1, ' ')
       << "  count          p50          p90          p99\n";
    for (const auto& [k, v] : histograms) {
      pad(k);
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%7llu %12.0f %12.0f %12.0f",
                    static_cast<unsigned long long>(v.count()), v.p50(),
                    v.p90(), v.p99());
      os << buf << "\n";
    }
  }
  if (counters.empty() && gauges.empty() && timers.empty() &&
      histograms.empty()) {
    os << "(no metrics recorded)\n";
  }
  return os.str();
}

void Registry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("schema").value("parcm-metrics-v1");
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters()) w.key(k).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [k, v] : gauges()) w.key(k).value(v);
  w.end_object();
  w.key("timers").begin_object();
  for (const auto& [k, v] : timers()) {
    w.key(k).begin_object();
    w.key("count").value(v.count);
    w.key("total_ms").value(v.total_ms());
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [k, v] : histograms()) {
    w.key(k).begin_object();
    w.key("count").value(v.count());
    w.key("sum").value(v.sum());
    w.key("min").value(v.min());
    w.key("max").value(v.max());
    w.key("mean").value(v.mean());
    w.key("p50").value(v.p50());
    w.key("p90").value(v.p90());
    w.key("p99").value(v.p99());
    // Sparse bucket array [[bucket, count], ...]: the exact distribution,
    // so consumers (parcm_profile) can merge histograms across files
    // losslessly instead of averaging the summary statistics.
    w.key("buckets").begin_array();
    const auto& buckets = v.buckets();
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      if (buckets[b] == 0) continue;
      w.begin_array();
      w.value(b);
      w.value(buckets[b]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Registry::to_json(bool pretty) const {
  JsonWriter w(pretty);
  write_json(w);
  return w.take();
}

}  // namespace parcm::obs
