#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "obs/json.hpp"

namespace parcm::obs {

namespace {

Registry default_registry;
std::atomic<Registry*> current_registry{&default_registry};
thread_local Registry* thread_registry = nullptr;

}  // namespace

Registry& registry() {
  if (thread_registry) return *thread_registry;
  return *current_registry.load(std::memory_order_acquire);
}

Registry* set_registry(Registry* r) {
  return current_registry.exchange(r ? r : &default_registry,
                                   std::memory_order_acq_rel);
}

Registry* set_thread_registry(Registry* r) {
  Registry* prev = thread_registry;
  thread_registry = r;
  return prev;
}

void Registry::add_counter(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::add_timer_ns(std::string_view name, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) it = timers_.emplace(std::string(name), TimerStat{}).first;
  it->second.count += 1;
  it->second.total_ns += ns;
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, TimerStat> Registry::timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {timers_.begin(), timers_.end()};
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::merge_from(const Registry& other) {
  // Snapshot first: locking both registries at once invites deadlock, and
  // merge sources are quiescent per-worker registries anyway.
  auto counters = other.counters();
  auto gauges = other.gauges();
  auto timers = other.timers();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : counters) counters_[k] += v;
  for (const auto& [k, v] : gauges) gauges_[k] = v;
  for (const auto& [k, v] : timers) {
    TimerStat& t = timers_[k];
    t.count += v.count;
    t.total_ns += v.total_ns;
  }
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && timers_.empty();
}

std::string Registry::to_string() const {
  auto counters = this->counters();
  auto gauges = this->gauges();
  auto timers = this->timers();

  std::size_t width = 0;
  for (const auto& [k, v] : counters) width = std::max(width, k.size());
  for (const auto& [k, v] : gauges) width = std::max(width, k.size());
  for (const auto& [k, v] : timers) width = std::max(width, k.size());

  std::ostringstream os;
  auto pad = [&](const std::string& k) {
    os << "  " << k << std::string(width - k.size() + 2, ' ');
  };
  if (!counters.empty()) {
    os << "counters:\n";
    for (const auto& [k, v] : counters) {
      pad(k);
      os << v << "\n";
    }
  }
  if (!gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [k, v] : gauges) {
      pad(k);
      os << json_number(v) << "\n";
    }
  }
  if (!timers.empty()) {
    os << "timers:" << std::string(width > 5 ? width - 5 : 1, ' ')
       << "  calls     total ms\n";
    for (const auto& [k, v] : timers) {
      pad(k);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%7llu %12.3f",
                    static_cast<unsigned long long>(v.count), v.total_ms());
      os << buf << "\n";
    }
  }
  if (counters.empty() && gauges.empty() && timers.empty()) {
    os << "(no metrics recorded)\n";
  }
  return os.str();
}

void Registry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters()) w.key(k).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [k, v] : gauges()) w.key(k).value(v);
  w.end_object();
  w.key("timers").begin_object();
  for (const auto& [k, v] : timers()) {
    w.key(k).begin_object();
    w.key("count").value(v.count);
    w.key("total_ms").value(v.total_ms());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Registry::to_json(bool pretty) const {
  JsonWriter w(pretty);
  write_json(w);
  return w.take();
}

}  // namespace parcm::obs
