// Optimization remarks: structured provenance for every code-motion
// decision.
//
// Each analysis and motion pass emits typed remarks — Inserted, Replaced,
// Blocked, Skipped, Degraded — carrying the node id, the term, the pass
// name and a machine-readable *reason chain* (e.g. earliest ∧ down-safe, or
// "per-interleaving witness differs (P3)"). The stream answers "why was
// `a+b` inserted at node 7 and not hoisted out of this parallel
// component?", the question the paper's three pitfalls (P1 optimality, P2
// recursive assignments, P3 up-/down-safety) all silently hinge on.
//
// Like the metrics Registry, the sink is process-global and injectable
// (set_remark_sink) so tests and the parcm_explain CLI capture an isolated
// stream. Emission call sites use the PARCM_OBS_REMARK* macros, which
// compile to nothing when PARCM_OBS_ENABLED is 0 and cost one branch when
// the sink is disabled; the classes themselves stay available either way so
// consumers keep linking.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/alloc.hpp"    // ForeignAllocSink, thread_alloc_count
#include "obs/metrics.hpp"  // PARCM_OBS_ENABLED, PARCM_OBS_CONCAT
#include "obs/trace.hpp"    // TraceThreadScope

namespace parcm::obs {

class JsonWriter;

enum class RemarkKind : std::uint8_t {
  kInserted,  // code added (temp initialization, copy)
  kReplaced,  // node rewritten (computation -> temp read, assignment -> skip)
  kBlocked,   // a safety rule prevented or forced a decision
  kSkipped,   // pass considered a candidate and declined
  kDegraded,  // fallback or partial application (sunk anchor, private temp)
};

// Stable kebab-case id, e.g. "inserted" (used by JSON and CLI filters).
const char* remark_kind_name(RemarkKind kind);

// One step of a reason chain. Ids are stable machine-readable slugs;
// labels are the human sentences printed by reports and parcm_explain.
enum class RemarkReason : std::uint8_t {
  kComputes,        // node computes the term
  kUpSafe,          // up-safe at the node (availability)
  kDownSafe,        // down-safe at the node (anticipability)
  kEarliest,        // placement frontier of busy code motion
  kLatest,          // delay frontier of lazy code motion
  kIsolated,        // LCM isolation: temp would serve only its own insertion
  kAnchorSunk,      // anchor moved to its must-use frontier
  kValueDies,       // every continuation kills the value before a use
  kEdgePlacement,   // start/ParEnd anchors place on each outgoing edge
  kBottleneck,      // P1: would move work into a transparent component
  kRecursiveSplit,  // P2: implicit decomposition of a recursive assignment
  kWitnessDiffers,  // P3: per-interleaving witness differs (summary Const_ff)
  kExported,        // up-safe_par summary Const_tt: value crosses the join
  kOperandKilled,   // computes the term but assigns one of its own operands
  kPrivatized,      // component-private temporary (sibling interference)
  kBridgeCopy,      // zero-cost copy wiring a private temp across a boundary
  kBarrierPhase,    // anticipability cut at a synchronization barrier
  kDeadAssignment,  // no interleaving reads the value before overwrite
  kPartiallyDead,   // dead on some paths: sunk to its use frontier
  kContested,       // potentially-parallel access blocks the reordering
  kUnprofitable,    // transformation would churn without improving a path
};

const char* remark_reason_id(RemarkReason r);     // "interleaving-witness-p3"
const char* remark_reason_label(RemarkReason r);  // the human sentence
// "P1", "P2", "P3" for the paper's pitfalls, nullptr otherwise.
const char* remark_reason_pitfall(RemarkReason r);

// A reason chain is short (at most four steps today); fixed inline storage
// keeps remark emission allocation-free on the hot replacement path.
// Iteration, indexing and std::find work as on a vector.
class ReasonChain {
 public:
  ReasonChain() = default;
  ReasonChain(std::initializer_list<RemarkReason> rs) {
    for (RemarkReason r : rs) push_back(r);
  }
  void push_back(RemarkReason r) {
    if (size_ < kCapacity) data_[size_++] = r;
  }
  const RemarkReason* begin() const { return data_; }
  const RemarkReason* end() const { return data_ + size_; }
  RemarkReason operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool operator==(const ReasonChain& o) const {
    if (size_ != o.size_) return false;
    for (std::uint8_t i = 0; i < size_; ++i) {
      if (data_[i] != o.data_[i]) return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kCapacity = 6;
  RemarkReason data_[kCapacity] = {};
  std::uint8_t size_ = 0;
};

struct Remark {
  RemarkKind kind = RemarkKind::kSkipped;
  std::string pass;             // emitting pass ("pcm", "dce", ...)
  std::int64_t node = -1;       // node id in the pass's graph; -1 = none
  std::int64_t term_index = -1; // TermId index; -1 = not term-related
  std::string term;             // rendered term ("a + b"); may be empty
  std::string message;          // one-line human statement of the decision
  ReasonChain reasons;          // machine-readable reason chain
  std::string detail;           // free-form context (frontier nodes, temps)

  bool operator==(const Remark&) const = default;
};

// "n12 [inserted] pcm `a + b`: message (earliest ∧ down-safe) — detail".
std::string remark_to_string(const Remark& r);

class RemarkSink {
 public:
  // Disabled sinks drop emissions at the macro's single branch; the pass
  // scope is still tracked so a later enable sees correct attribution.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  void emit(Remark r);

  // Moves a whole batch in under one lock. Hot loops that emit one remark
  // per node use this to keep the per-remark cost to the string copies
  // alone. The batch is emptied but keeps its capacity, so a caller-owned
  // buffer amortizes to one allocation across many batches.
  void emit_batch(std::vector<Remark>& batch);

  // Current pass name stamped on remarks emitted without one (see
  // RemarkPassScope). Returns the previous name.
  std::string set_pass(std::string name);
  std::string pass() const;

  void clear();
  bool empty() const;
  std::size_t size() const;
  std::vector<Remark> snapshot() const;

  // Emission epoch: a process-unique value drawn at construction and again
  // by every clear(). Consumers that emit derived remarks at most once per
  // content — the analysis cache's acquisition remarks — key their dedup on
  // this, so installing a fresh sink or clearing the current one starts a
  // new epoch and re-emits.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // One remark_to_string line per remark, in emission order.
  std::string to_string() const;

  // {"schema":"parcm-remarks-v1","remarks":[{kind,pass,node,term_index,
  // term,message,reasons:[slug...],pitfalls:[...],detail}, ...]} — stable
  // field order, suitable for machine diffing.
  void write_json(JsonWriter& w) const;
  std::string to_json(bool pretty = false) const;

 private:
  static std::uint64_t next_epoch();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_{next_epoch()};
  mutable std::mutex mu_;
  std::string pass_;
  std::vector<Remark> remarks_;
};

// The sink the macros report into: the calling thread's override when one
// is installed (set_thread_remark_sink), else the process-global one.
RemarkSink& remarks();

// Injects `s` as the global sink (nullptr restores the default); returns
// the previously installed one. Mirrors obs::set_registry.
RemarkSink* set_remark_sink(RemarkSink* s);

// Installs `s` as this thread's sink override (nullptr removes it); returns
// the previous override. Batch-driver workers and parallel fuzz campaigns
// each capture their own remark stream this way without fighting over the
// process-global sink. Mirrors obs::set_thread_registry.
RemarkSink* set_thread_remark_sink(RemarkSink* s);

// The effective obs destinations of the calling thread — registry, remark
// sink, and trace track — for hand-off to helper threads that should
// report into the same place. A helper thread installs the bindings for
// its lifetime via ThreadBindingsScope — the std::async safety solves use
// this so their counters stay attributed to the spawning worker, not to
// whichever global sinks the helper thread would otherwise see.
struct ThreadBindings {
  Registry* registry = nullptr;
  RemarkSink* remarks = nullptr;
  // Spawning thread's trace track ("" when it is unbound or tracing is
  // off); the helper records onto "<trace_track>/async".
  std::string trace_track;
  // Spawning thread's foreign-allocation sink (nullptr when none): the
  // helper's allocation delta over the scope's lifetime is flushed here, so
  // per-job allocation accounting covers helper-thread work too.
  ForeignAllocSink* alloc_sink = nullptr;
};
ThreadBindings current_thread_bindings();

class ThreadBindingsScope {
 public:
  explicit ThreadBindingsScope(const ThreadBindings& b)
      : prev_registry_(set_thread_registry(b.registry)),
        prev_sink_(set_thread_remark_sink(b.remarks)),
        alloc_sink_(b.alloc_sink),
        start_allocs_(thread_alloc_count()),
        start_bytes_(thread_alloc_bytes()) {
    if (!b.trace_track.empty()) {
      trace_scope_.emplace(b.trace_track + "/async");
    }
  }
  ~ThreadBindingsScope() {
    trace_scope_.reset();
    if (alloc_sink_ != nullptr) {
      alloc_sink_->add(thread_alloc_count() - start_allocs_,
                       thread_alloc_bytes() - start_bytes_);
    }
    set_thread_remark_sink(prev_sink_);
    set_thread_registry(prev_registry_);
  }
  ThreadBindingsScope(const ThreadBindingsScope&) = delete;
  ThreadBindingsScope& operator=(const ThreadBindingsScope&) = delete;

 private:
  Registry* prev_registry_;
  RemarkSink* prev_sink_;
  ForeignAllocSink* alloc_sink_;
  std::uint64_t start_allocs_;
  std::uint64_t start_bytes_;
  std::optional<TraceThreadScope> trace_scope_;
};

// RAII pass-name scope: remarks emitted while alive and not already naming
// a pass are attributed to `name`; the previous name is restored on exit.
class RemarkPassScope {
 public:
  explicit RemarkPassScope(std::string_view name)
      : prev_(remarks().set_pass(std::string(name))) {}
  ~RemarkPassScope() { remarks().set_pass(std::move(prev_)); }
  RemarkPassScope(const RemarkPassScope&) = delete;
  RemarkPassScope& operator=(const RemarkPassScope&) = delete;

 private:
  std::string prev_;
};

}  // namespace parcm::obs

#if PARCM_OBS_ENABLED
// True when remark recording is compiled in AND the sink is enabled; guards
// loops that only exist to build remarks.
#define PARCM_OBS_REMARKS_ON() (::parcm::obs::remarks().enabled())
// Emits a Remark expression; the argument is evaluated only when the sink
// is enabled, so building messages costs nothing on the disabled path.
#define PARCM_OBS_REMARK(...)                                        \
  do {                                                               \
    ::parcm::obs::RemarkSink& parcm_obs_sink = ::parcm::obs::remarks(); \
    if (parcm_obs_sink.enabled()) parcm_obs_sink.emit(__VA_ARGS__);  \
  } while (0)
// Names the pass for every remark emitted in the current scope.
#define PARCM_OBS_REMARK_PASS(name)                 \
  ::parcm::obs::RemarkPassScope PARCM_OBS_CONCAT(   \
      parcm_obs_remark_pass_, __LINE__)(name)
#else
#define PARCM_OBS_REMARKS_ON() (false)
#define PARCM_OBS_REMARK(...) ((void)0)
#define PARCM_OBS_REMARK_PASS(name) ((void)0)
#endif
