#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "support/diagnostics.hpp"

namespace parcm::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PARCM_CHECK(ec == std::errc(), "double to_chars failed");
  std::string s(buf, p);
  // Bare exponentless integral doubles are valid JSON already; nothing to do.
  return s;
}

namespace {

// Recursive-descent structural checker behind json_valid. Consumes one
// grammar production from `s` at `pos`; returns false on any malformation.
struct JsonChecker {
  std::string_view s;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r')) {
      ++pos;
    }
  }
  bool literal(std::string_view word) {
    if (s.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }
  bool string() {
    if (pos >= s.size() || s[pos] != '"') return false;
    ++pos;
    while (pos < s.size()) {
      unsigned char c = static_cast<unsigned char>(s[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos;
        if (pos >= s.size()) return false;
        char e = s[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= s.size() || !std::isxdigit(static_cast<unsigned char>(
                                           s[pos + i]))) {
              return false;
            }
          }
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;  // unterminated
  }
  bool digits() {
    std::size_t start = pos;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    return pos > start;
  }
  bool number() {
    if (pos < s.size() && s[pos] == '-') ++pos;
    if (pos < s.size() && s[pos] == '0') {
      ++pos;
    } else if (!digits()) {
      return false;
    }
    if (pos < s.size() && s[pos] == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
      if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }
  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    if (pos >= s.size()) {
      ok = false;
    } else if (s[pos] == '{') {
      ok = members();
    } else if (s[pos] == '[') {
      ok = elements();
    } else if (s[pos] == '"') {
      ok = string();
    } else if (s[pos] == 't') {
      ok = literal("true");
    } else if (s[pos] == 'f') {
      ok = literal("false");
    } else if (s[pos] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
  bool members() {
    ++pos;  // '{'
    skip_ws();
    if (pos < s.size() && s[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos >= s.size() || s[pos] != ':') return false;
      ++pos;
      if (!value()) return false;
      skip_ws();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
    if (pos >= s.size() || s[pos] != '}') return false;
    ++pos;
    return true;
  }
  bool elements() {
    ++pos;  // '['
    skip_ws();
    if (pos < s.size() && s[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
    if (pos >= s.size() || s[pos] != ']') return false;
    ++pos;
    return true;
  }
};

}  // namespace

bool json_valid(std::string_view s) {
  JsonChecker c{s};
  if (!c.value()) return false;
  c.skip_ws();
  return c.pos == s.size();
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Scope& s = stack_.back();
  PARCM_CHECK(s.close != '}', "json: value inside object requires a key");
  if (!s.first) out_ += ',';
  s.first = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  PARCM_CHECK(!stack_.empty() && stack_.back().close == '}',
              "json: key outside object");
  PARCM_CHECK(!pending_key_, "json: two keys in a row");
  Scope& s = stack_.back();
  if (!s.first) out_ += ',';
  s.first = false;
  newline_indent();
  out_ += '"';
  out_ += json_escape(k);
  out_ += pretty_ ? "\": " : "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope{'}'});
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope{']'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PARCM_CHECK(!stack_.empty() && stack_.back().close == '}',
              "json: mismatched end_object");
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PARCM_CHECK(!stack_.empty() && stack_.back().close == ']',
              "json: mismatched end_array");
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::int_value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::uint_value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

}  // namespace parcm::obs
