#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/diagnostics.hpp"

namespace parcm::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PARCM_CHECK(ec == std::errc(), "double to_chars failed");
  std::string s(buf, p);
  // Bare exponentless integral doubles are valid JSON already; nothing to do.
  return s;
}

namespace {

// Recursive-descent structural checker behind json_valid. Consumes one
// grammar production from `s` at `pos`; returns false on any malformation.
struct JsonChecker {
  std::string_view s;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r')) {
      ++pos;
    }
  }
  bool literal(std::string_view word) {
    if (s.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }
  bool string() {
    if (pos >= s.size() || s[pos] != '"') return false;
    ++pos;
    while (pos < s.size()) {
      unsigned char c = static_cast<unsigned char>(s[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos;
        if (pos >= s.size()) return false;
        char e = s[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= s.size() || !std::isxdigit(static_cast<unsigned char>(
                                           s[pos + i]))) {
              return false;
            }
          }
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;  // unterminated
  }
  bool digits() {
    std::size_t start = pos;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
    return pos > start;
  }
  bool number() {
    if (pos < s.size() && s[pos] == '-') ++pos;
    if (pos < s.size() && s[pos] == '0') {
      ++pos;
    } else if (!digits()) {
      return false;
    }
    if (pos < s.size() && s[pos] == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
      if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }
  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    if (pos >= s.size()) {
      ok = false;
    } else if (s[pos] == '{') {
      ok = members();
    } else if (s[pos] == '[') {
      ok = elements();
    } else if (s[pos] == '"') {
      ok = string();
    } else if (s[pos] == 't') {
      ok = literal("true");
    } else if (s[pos] == 'f') {
      ok = literal("false");
    } else if (s[pos] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
  bool members() {
    ++pos;  // '{'
    skip_ws();
    if (pos < s.size() && s[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos >= s.size() || s[pos] != ':') return false;
      ++pos;
      if (!value()) return false;
      skip_ws();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
    if (pos >= s.size() || s[pos] != '}') return false;
    ++pos;
    return true;
  }
  bool elements() {
    ++pos;  // '['
    skip_ws();
    if (pos < s.size() && s[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
    if (pos >= s.size() || s[pos] != ']') return false;
    ++pos;
    return true;
  }
};

}  // namespace

bool json_valid(std::string_view s) {
  JsonChecker c{s};
  if (!c.value()) return false;
  c.skip_ws();
  return c.pos == s.size();
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (!is_number() || number_ < 0 || !std::isfinite(number_)) return fallback;
  return static_cast<std::uint64_t>(number_);
}

std::int64_t JsonValue::as_i64(std::int64_t fallback) const {
  if (!is_number() || !std::isfinite(number_)) return fallback;
  return static_cast<std::int64_t>(number_);
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::get_or(std::string_view key) const {
  static const JsonValue kNullValue;
  const JsonValue* v = get(key);
  return v != nullptr ? *v : kNullValue;
}

JsonValue JsonValue::null() { return JsonValue(); }
JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}
JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}
JsonValue JsonValue::object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

// Recursive-descent parser sharing the grammar of JsonChecker but
// materializing values. Kept separate: json_valid stays allocation-free for
// the schema tests that call it on megabyte documents.
class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  bool parse(JsonValue* out) {
    if (!value(out, 0)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  static void append_utf8(std::uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(std::uint32_t* out) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= s_.size()) return false;
      char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    *out = v;
    return true;
  }

  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!hex4(&cp)) return false;
            // Surrogate pair: combine; a lone surrogate becomes U+FFFD.
            if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < s_.size() &&
                s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
              pos_ += 2;
              std::uint32_t lo = 0;
              if (!hex4(&lo)) return false;
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                cp = 0xFFFD;
              }
            } else if (cp >= 0xD800 && cp <= 0xDFFF) {
              cp = 0xFFFD;
            }
            append_utf8(cp, out);
            break;
          }
          default: return false;
        }
      } else {
        *out += static_cast<char>(c);
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool number(double* out) {
    std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    auto digits = [this] {
      std::size_t d = pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
      return pos_ > d;
    };
    if (pos_ < s_.size() && s_[pos_] == '0') {
      ++pos_;
    } else if (!digits()) {
      return false;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    auto [p, ec] =
        std::from_chars(s_.data() + start, s_.data() + pos_, *out);
    return ec == std::errc() && p == s_.data() + pos_;
  }

  bool value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind_ = JsonValue::Kind::kObject;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        JsonValue::Member m;
        if (!string(&m.first)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') return false;
        ++pos_;
        if (!value(&m.second, depth + 1)) return false;
        out->members_.push_back(std::move(m));
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (pos_ >= s_.size() || s_[pos_] != '}') return false;
      ++pos_;
      return true;
    }
    if (c == '[') {
      ++pos_;
      out->kind_ = JsonValue::Kind::kArray;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue item;
        if (!value(&item, depth + 1)) return false;
        out->array_.push_back(std::move(item));
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (pos_ >= s_.size() || s_[pos_] != ']') return false;
      ++pos_;
      return true;
    }
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return string(&out->string_);
    }
    if (c == 't') {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return literal("true");
    }
    if (c == 'f') {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return literal("false");
    }
    if (c == 'n') {
      out->kind_ = JsonValue::Kind::kNull;
      return literal("null");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    return number(&out->number_);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> json_parse(std::string_view s) {
  JsonValue v;
  JsonParser p(s);
  if (!p.parse(&v)) return std::nullopt;
  return v;
}

std::optional<JsonValue> json_parse_file(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<JsonValue> doc = json_parse(buf.str());
  if (!doc.has_value() && error != nullptr) {
    *error = path + ": malformed JSON";
  }
  return doc;
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Scope& s = stack_.back();
  PARCM_CHECK(s.close != '}', "json: value inside object requires a key");
  if (!s.first) out_ += ',';
  s.first = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  PARCM_CHECK(!stack_.empty() && stack_.back().close == '}',
              "json: key outside object");
  PARCM_CHECK(!pending_key_, "json: two keys in a row");
  Scope& s = stack_.back();
  if (!s.first) out_ += ',';
  s.first = false;
  newline_indent();
  out_ += '"';
  out_ += json_escape(k);
  out_ += pretty_ ? "\": " : "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope{'}'});
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope{']'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PARCM_CHECK(!stack_.empty() && stack_.back().close == '}',
              "json: mismatched end_object");
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PARCM_CHECK(!stack_.empty() && stack_.back().close == ']',
              "json: mismatched end_array");
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::int_value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::uint_value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

}  // namespace parcm::obs
