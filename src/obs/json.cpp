#include "obs/json.hpp"

#include <charconv>
#include <cmath>

#include "support/diagnostics.hpp"

namespace parcm::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PARCM_CHECK(ec == std::errc(), "double to_chars failed");
  std::string s(buf, p);
  // Bare exponentless integral doubles are valid JSON already; nothing to do.
  return s;
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Scope& s = stack_.back();
  PARCM_CHECK(s.close != '}', "json: value inside object requires a key");
  if (!s.first) out_ += ',';
  s.first = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  PARCM_CHECK(!stack_.empty() && stack_.back().close == '}',
              "json: key outside object");
  PARCM_CHECK(!pending_key_, "json: two keys in a row");
  Scope& s = stack_.back();
  if (!s.first) out_ += ',';
  s.first = false;
  newline_indent();
  out_ += '"';
  out_ += json_escape(k);
  out_ += pretty_ ? "\": " : "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope{'}'});
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope{']'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PARCM_CHECK(!stack_.empty() && stack_.back().close == '}',
              "json: mismatched end_object");
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PARCM_CHECK(!stack_.empty() && stack_.back().close == ']',
              "json: mismatched end_array");
  bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::int_value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::uint_value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

}  // namespace parcm::obs
