#include "obs/alloc.hpp"

#include <cstdlib>
#include <new>

#ifndef PARCM_OBS_ALLOC_HOOK
#define PARCM_OBS_ALLOC_HOOK 0
#endif

namespace parcm::obs {
namespace {

#if PARCM_OBS_ALLOC_HOOK
// Zero-initialized POD: no dynamic TLS construction, so the counters are
// safe to touch from the very first allocation a thread makes.
struct AllocCounters {
  std::uint64_t allocs;
  std::uint64_t bytes;
};
thread_local AllocCounters tl_alloc_counters;
#endif

thread_local ForeignAllocSink* tl_foreign_sink = nullptr;

}  // namespace

ForeignAllocSink* thread_foreign_alloc_sink() { return tl_foreign_sink; }

ForeignAllocSink* set_thread_foreign_alloc_sink(ForeignAllocSink* s) {
  ForeignAllocSink* prev = tl_foreign_sink;
  tl_foreign_sink = s;
  return prev;
}

bool alloc_hook_active() { return PARCM_OBS_ALLOC_HOOK != 0; }

std::uint64_t thread_alloc_count() {
#if PARCM_OBS_ALLOC_HOOK
  return tl_alloc_counters.allocs;
#else
  return 0;
#endif
}

std::uint64_t thread_alloc_bytes() {
#if PARCM_OBS_ALLOC_HOOK
  return tl_alloc_counters.bytes;
#else
  return 0;
#endif
}

#if PARCM_OBS_ENABLED
AllocCounterScope::AllocCounterScope()
    : start_allocs_(thread_alloc_count()), start_bytes_(thread_alloc_bytes()) {}
std::uint64_t AllocCounterScope::allocs() const {
  return thread_alloc_count() - start_allocs_;
}
std::uint64_t AllocCounterScope::bytes() const {
  return thread_alloc_bytes() - start_bytes_;
}
#endif

}  // namespace parcm::obs

#if PARCM_OBS_ALLOC_HOOK

namespace {

void* counted_alloc(std::size_t size) {
  auto& c = parcm::obs::tl_alloc_counters;
  ++c.allocs;
  c.bytes += size;
  return std::malloc(size ? size : 1);
}

}  // namespace

// Replaceable global allocation functions ([new.delete.single/array]).
// Over-aligned variants are left to the implementation — the compiler
// never mixes them with these, and the solver allocates nothing
// over-aligned worth counting.

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // PARCM_OBS_ALLOC_HOOK
