// Executors for the parallel-flow-graph bytecode.
//
// Three modes over one instruction set:
//
//  * run_seeded — the oracle's mode. One OS thread, but every instruction
//    boundary is a schedule point: a pinned xoshiro stream picks uniformly
//    among the runnable tasks, so one (program, seed) pair names exactly
//    one maximal interleaving, reproducible on any platform. Right-hand
//    sides evaluate in a single step (the Remark 2.1 granularity), so with
//    a split lowering the set of reachable final stores over all seeds is
//    the enumerator's behaviour set — which is what makes seeded VM runs a
//    sound sampling oracle (verify::vm_differential_check).
//
//  * run_with_oracle — the cost model's mode. Branches and nondeterministic
//    choices follow a BranchOracle keyed on (originating node, visit index)
//    exactly like semantics/cost.hpp's CostWalker, and the executor
//    accumulates the paper's bottleneck time with the same phase algebra
//    (sum along a thread, per-barrier-phase maximum across components).
//    For any oracle that is a pure function of (node, visit, choices) the
//    resulting time/computations equal execution_time() — the
//    executional-improvement regression test holds the two implementations
//    against each other.
//
//  * run_parallel — the wall-clock mode. Par components become tasks on
//    Chase-Lev work-stealing deques (driver/work_queue.hpp), one deque per
//    worker, shared store in seq_cst atomics. Interleaving granularity here
//    is the hardware's (individual loads and stores), strictly finer than
//    the oracle's single-step rhs evaluation — fine for timing and TSan
//    stress, not for behaviour-set comparisons.
//
// Join and barrier protocol (all modes): a spawner parks with its pc
// pre-set to the statement's ParEnd; the last component to halt re-enqueues
// it. A task arriving at a barrier parks with its pc pre-set past the
// barrier; the statement releases all waiters when every *live* component
// waits. A component that halts decrements the live count and re-checks the
// release condition — this is what keeps a barrier paired with a
// zero-statement sibling component from deadlocking (the empty component
// halts immediately and is excused from the collective, matching
// barrier_release_transitions in the interpreter).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "semantics/cost.hpp"
#include "vm/bytecode.hpp"

namespace parcm::vm {

struct ExecLimits {
  // Instruction budget for one execution; nondeterministic loops may spin,
  // the budget turns them into ok=false instead of a hang.
  std::size_t max_steps = 1u << 20;
  // Schedule-perturbation knob for the seeded mode: 0 picks uniformly
  // among the runnable tasks at every step; negative prefers the
  // lowest-indexed ready slot and positive the highest (7 of 8 picks,
  // the rest stay uniform). Biased streams drive runs toward the corner
  // interleavings — components running (almost) to completion in or
  // against spawn order — that a uniform sampler reaches only with
  // vanishing probability; verify::vm_differential_check stratifies its
  // schedule budget across all three.
  int schedule_bias = 0;
};

struct ExecResult {
  bool ok = false;          // terminated within the step budget
  bool deadlocked = false;  // no runnable task before termination (defensive:
                            // a validated graph never triggers this)
  std::vector<std::int64_t> store;  // final shared store, indexed by VarId
  std::uint64_t instrs = 0;         // instructions executed
  // Cost mode only (run_with_oracle): the paper's measures.
  std::uint64_t time = 0;          // bottleneck execution time
  std::uint64_t computations = 0;  // total operator evaluations
};

// One seeded maximal execution; a pure function of (p, seed, limits).
ExecResult run_seeded(const VmProgram& p, std::uint64_t seed,
                      const ExecLimits& limits = {});

// Amortized form of run_seeded for samplers that execute one program under
// many seeds (verify::vm_differential_check runs hundreds of schedules per
// check): one machine's task/store/ready buffers are reused across runs, so
// the per-run cost is the execution itself, not the setup. run(seed,
// limits) returns exactly what run_seeded(p, seed, limits) would.
class SeededRunner {
 public:
  explicit SeededRunner(const VmProgram& p);
  ~SeededRunner();
  SeededRunner(const SeededRunner&) = delete;
  SeededRunner& operator=(const SeededRunner&) = delete;

  ExecResult run(std::uint64_t seed, const ExecLimits& limits = {});

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Oracle-driven execution with bottleneck-cost accounting. Deterministic
// scheduling (the schedule cannot affect the structural cost); branch
// decisions and visit counting mirror semantics/cost.hpp.
ExecResult run_with_oracle(const VmProgram& p, BranchOracle& oracle,
                           const ExecLimits& limits = {});

struct ParallelOptions {
  std::size_t workers = 0;   // 0 = hardware concurrency (capped at regions)
  std::uint64_t seed = 0;    // perturbs each worker's steal-victim order
  std::size_t max_steps = 1u << 22;  // global instruction budget
};

// Free-running execution on real threads; time/computations stay 0.
ExecResult run_parallel(const VmProgram& p, const ParallelOptions& opts = {});

}  // namespace parcm::vm
