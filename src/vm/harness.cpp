#include "vm/harness.hpp"

#include <sstream>
#include <vector>

#include "driver/driver.hpp"
#include "lang/lower.hpp"
#include "obs/json.hpp"
#include "semantics/cost.hpp"
#include "support/diagnostics.hpp"
#include "verify/fuzz.hpp"
#include "vm/bytecode.hpp"
#include "vm/executor.hpp"

namespace parcm::vm {

CorpusOptions::CorpusOptions() : gen(verify::default_fuzz_gen()) {}

namespace {

// Per-program tallies; CorpusReport minus the config echo. Reduced
// sequentially in index order, so the sums are jobs-independent.
struct Slot {
  std::size_t pairs = 0;
  std::uint64_t instrs_original = 0;
  std::uint64_t instrs_optimized = 0;
  std::uint64_t time_original = 0;
  std::uint64_t time_optimized = 0;
  std::uint64_t computations_original = 0;
  std::uint64_t computations_optimized = 0;
  std::size_t improved = 0;
  std::size_t equal = 0;
  std::size_t regressed = 0;
  std::size_t cost_mismatches = 0;
  std::size_t skipped = 0;
};

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15uLL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9uLL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBuLL;
  return x ^ (x >> 31);
}

Slot measure_one(const CorpusOptions& options, std::size_t index) {
  Slot slot;
  lang::Program ast = verify::fuzz_program_pooled(options.seed, index,
                                                  options.shapes, options.gen);
  Graph before = lang::lower(ast);
  Graph after = verify::apply_named_pipeline(options.pipeline, before);
  // Cost runs only care about path shape, so the cheaper atomic lowering
  // suffices (split mode is the behaviour oracle's concern).
  LowerOptions lopts;
  lopts.split_assignments = false;
  VmProgram vm_before = lower_to_bytecode(before, lopts);
  VmProgram vm_after = lower_to_bytecode(after, lopts);
  ExecLimits limits;
  limits.max_steps = options.max_steps;

  for (std::size_t s = 0; s < options.schedules; ++s) {
    std::uint64_t path_seed = mix(options.seed ^ mix(index) ^ s);
    SeededOracle oracle_before(path_seed);
    SeededOracle oracle_after(path_seed);
    ExecResult r_before = run_with_oracle(vm_before, oracle_before, limits);
    ExecResult r_after = run_with_oracle(vm_after, oracle_after, limits);
    auto analytic =
        paired_execution_times(before, after, path_seed, options.max_steps);
    if (!r_before.ok || !r_after.ok || !analytic.has_value()) {
      ++slot.skipped;
      continue;
    }
    ++slot.pairs;
    slot.instrs_original += r_before.instrs;
    slot.instrs_optimized += r_after.instrs;
    slot.time_original += r_before.time;
    slot.time_optimized += r_after.time;
    slot.computations_original += r_before.computations;
    slot.computations_optimized += r_after.computations;
    if (r_after.time < r_before.time) {
      ++slot.improved;
    } else if (r_after.time == r_before.time) {
      ++slot.equal;
    } else {
      ++slot.regressed;
    }
    if (r_before.time != analytic->first.time ||
        r_before.computations != analytic->first.computations ||
        r_after.time != analytic->second.time ||
        r_after.computations != analytic->second.computations) {
      ++slot.cost_mismatches;
    }
  }
  return slot;
}

}  // namespace

CorpusReport run_exec_corpus(const CorpusOptions& options) {
  std::vector<Slot> slots(options.programs);
  if (options.jobs != 1 && options.programs > 1) {
    driver::BatchOptions batch;
    batch.jobs = options.jobs;
    batch.pipeline = options.pipeline;
    batch.keep_output = false;
    batch.collect_remarks = false;
    batch.runner = [&options, &slots](const driver::BatchJob&,
                                      std::size_t index,
                                      driver::WorkerContext&,
                                      driver::ProgramResult&) {
      slots[index] = measure_one(options, index);
    };
    driver::Manifest manifest = driver::Manifest::lazy(
        options.programs, "vmcorpus", [](std::size_t) { return std::string(); });
    driver::BatchReport report = driver::run_batch(manifest, batch);
    for (const driver::ProgramResult& r : report.programs) {
      PARCM_CHECK(r.status == driver::JobStatus::kDone,
                  "vm corpus program #" + std::to_string(r.index) +
                      " failed: " + r.error);
    }
  } else {
    for (std::size_t i = 0; i < options.programs; ++i) {
      slots[i] = measure_one(options, i);
    }
  }

  CorpusReport report;
  report.programs = options.programs;
  for (const Slot& s : slots) {
    report.pairs += s.pairs;
    report.instrs_original += s.instrs_original;
    report.instrs_optimized += s.instrs_optimized;
    report.time_original += s.time_original;
    report.time_optimized += s.time_optimized;
    report.computations_original += s.computations_original;
    report.computations_optimized += s.computations_optimized;
    report.improved += s.improved;
    report.equal += s.equal;
    report.regressed += s.regressed;
    report.cost_mismatches += s.cost_mismatches;
    report.skipped += s.skipped;
  }
  return report;
}

std::string CorpusReport::summary() const {
  std::ostringstream os;
  os << "vm corpus: " << programs << " programs, " << pairs
     << " sampled paths: " << improved << " improved, " << equal
     << " equal, " << regressed << " regressed, " << cost_mismatches
     << " cost mismatches, " << skipped << " skipped";
  if (time_original > 0) {
    os << "; bottleneck time " << time_original << " -> " << time_optimized;
  }
  return os.str();
}

std::string CorpusReport::to_json(bool pretty) const {
  obs::JsonWriter w(pretty);
  w.begin_object();
  w.key("schema").value("parcm-vm-corpus-v1");
  w.key("programs").value(programs);
  w.key("pairs").value(pairs);
  w.key("instrs_original").value(instrs_original);
  w.key("instrs_optimized").value(instrs_optimized);
  w.key("time_original").value(time_original);
  w.key("time_optimized").value(time_optimized);
  w.key("computations_original").value(computations_original);
  w.key("computations_optimized").value(computations_optimized);
  w.key("improved").value(improved);
  w.key("equal").value(equal);
  w.key("regressed").value(regressed);
  w.key("cost_mismatches").value(cost_mismatches);
  w.key("skipped").value(skipped);
  w.key("ok").value(ok());
  w.end_object();
  return w.take();
}

}  // namespace parcm::vm
