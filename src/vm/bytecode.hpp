// Register-bytecode lowering of parallel flow graphs.
//
// The VM closes the loop on the paper's *executional* claims: instead of
// scoring transformed programs analytically (semantics/cost.hpp) or
// enumerating their interleavings (semantics/enumerator.hpp), it lowers the
// graph to a flat instruction array and actually runs it — on one thread
// under a seeded scheduler (the differential oracle's mode) or on real
// threads through the work-stealing deques (the wall-clock bench's mode).
//
// The lowering is intentionally shallow: one to two instructions per node,
// region structure preserved as-is. Each region becomes one resumable task
// (regions cannot be re-entered concurrently — no recursion — so a flat
// per-region frame is a complete machine state). Instructions keep their
// originating NodeId, which is what lets the executor drive branches with
// the cost model's BranchOracle keyed on (node, visit): code motion
// preserves node ids, so the same oracle selects corresponding paths
// through the original and the transformed bytecode.
//
// Split-assignment semantics (Remark 2.1): with `split_assignments` every
// assignment lowers to kEval (right-hand side into the task-private
// accumulator; control does not leave the instruction pair) followed by
// kStore (write + advance), making the read and the write separately
// schedulable — exactly the model under which PCM is behaviour-preserving
// and the model the enumerator uses with atomic_assignments=false.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/expr.hpp"
#include "ir/graph.hpp"

namespace parcm::vm {

// Index into VmProgram::code. kHaltPc is not an address: a task whose next
// pc is kHaltPc has terminated (the root thread executed e*, or a component
// thread took its edge into the owning statement's ParEnd).
using Pc = std::uint32_t;
inline constexpr Pc kHaltPc = 0xFFFFFFFFu;

enum class Op : std::uint8_t {
  kNop,      // skip/synthetic/start/end/ParEnd: fall through to target
  kEval,     // acc := eval(rhs); fall through (split-assignment read)
  kStore,    // shared[dst] := acc (split-assignment write)
  kAssign,   // shared[dst] := eval(rhs) in one step (atomic mode)
  kBranch,   // test node: target when cond != 0, target2 otherwise
  kChoose,   // nondeterministic branch: scheduler picks one pool entry
  kSpawn,    // ParBegin: activate the statement's components, park on join
  kBarrier,  // collective barrier of the owning statement
};

const char* op_name(Op op);

struct Instr {
  Op op = Op::kNop;
  // Paper cost measure: operator right-hand sides cost 1, everything else 0
  // (carried by kEval/kAssign so both lowering modes charge once).
  bool counts = false;
  VarId dst;             // kStore / kAssign
  Rhs rhs;               // kEval / kAssign value; kBranch condition
  Pc target = kHaltPc;   // fall-through / true branch / post-barrier resume
  Pc target2 = kHaltPc;  // kBranch false branch
  std::uint32_t choices_off = 0;  // kChoose: offset into choice_pool
  std::uint32_t choices_len = 0;  // kChoose: number of alternatives
  ParStmtId stmt;        // kSpawn: statement spawned; kBarrier: owner stmt
  NodeId src;            // originating graph node (oracle key, diagnostics)
};

// Per parallel statement: what the executor needs at spawn and join time.
struct VmParStmt {
  std::vector<RegionId> components;
  RegionId parent;      // region of the spawning thread
  Pc resume = kHaltPc;  // spawner's continuation: the ParEnd node's pc
};

struct LowerOptions {
  // Remark 2.1 split model (the oracle's semantics of record). false lowers
  // every assignment to a single kAssign step — the mode the cost harness
  // uses, where only path shape matters.
  bool split_assignments = true;
};

struct VmProgram {
  std::vector<Instr> code;
  // Entry pc per region: the root region's start node, a component's entry
  // node (target of the ParBegin edge). Indexed by RegionId.
  std::vector<Pc> region_entry;
  // Owning statement per region (invalid for root). Indexed by RegionId.
  std::vector<ParStmtId> region_owner;
  std::vector<VmParStmt> par_stmts;  // indexed by ParStmtId
  std::vector<Pc> choice_pool;
  std::size_t num_vars = 0;
  std::size_t num_regions = 0;
  bool split_assignments = true;

  Pc root_entry() const { return region_entry.empty() ? kHaltPc
                                                      : region_entry[0]; }
  // Human-readable disassembly (tests, debugging).
  std::string to_string(const Graph* names = nullptr) const;
};

// Lowers a complete, validated graph. PARCM_CHECKs on malformed inputs
// (dangling branches, barrier outside a component) rather than emitting
// unreachable code.
VmProgram lower_to_bytecode(const Graph& g, const LowerOptions& opts = {});

}  // namespace parcm::vm
