#include "vm/bytecode.hpp"

#include <sstream>

#include "ir/printer.hpp"
#include "support/diagnostics.hpp"

namespace parcm::vm {

const char* op_name(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kEval: return "eval";
    case Op::kStore: return "store";
    case Op::kAssign: return "assign";
    case Op::kBranch: return "branch";
    case Op::kChoose: return "choose";
    case Op::kSpawn: return "spawn";
    case Op::kBarrier: return "barrier";
  }
  return "?";
}

namespace {

// The pc a control edge n -> s transfers to. A component thread's edge into
// its own statement's ParEnd is the thread's exit, not a jump: the join is
// performed by the executor when the task halts (kHaltPc).
Pc edge_target(const Graph& g, const std::vector<Pc>& node_pc, NodeId n,
               NodeId s) {
  ParStmtId owner = g.region(g.node(n).region).owner;
  if (owner.valid() && g.node(s).kind == NodeKind::kParEnd &&
      g.node(s).par_stmt == owner) {
    return kHaltPc;
  }
  return node_pc[s.index()];
}

}  // namespace

VmProgram lower_to_bytecode(const Graph& g, const LowerOptions& opts) {
  VmProgram p;
  p.num_vars = g.num_vars();
  p.num_regions = g.num_regions();
  p.split_assignments = opts.split_assignments;

  // Pass 1: emit instructions per node in creation order; remember each
  // node's first pc and the instruction whose successor fields pass 2
  // patches (the last one emitted for the node).
  std::vector<Pc> node_pc(g.num_nodes(), kHaltPc);
  std::vector<Pc> term_pc(g.num_nodes(), kHaltPc);
  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);
    Pc first = static_cast<Pc>(p.code.size());
    node_pc[n.index()] = first;
    Instr instr;
    instr.src = n;
    switch (node.kind) {
      case NodeKind::kAssign:
        if (opts.split_assignments) {
          instr.op = Op::kEval;
          instr.rhs = node.rhs;
          instr.counts = node.rhs.is_term();
          instr.target = first + 1;  // the paired kStore
          p.code.push_back(instr);
          Instr store;
          store.op = Op::kStore;
          store.dst = node.lhs;
          store.src = n;
          p.code.push_back(store);
        } else {
          instr.op = Op::kAssign;
          instr.dst = node.lhs;
          instr.rhs = node.rhs;
          instr.counts = node.rhs.is_term();
          p.code.push_back(instr);
        }
        break;
      case NodeKind::kTest:
        PARCM_CHECK(node.cond.has_value(), "test node without a condition");
        instr.op = Op::kBranch;
        instr.rhs = *node.cond;
        p.code.push_back(instr);
        break;
      case NodeKind::kParBegin:
        instr.op = Op::kSpawn;
        instr.stmt = node.par_stmt;
        p.code.push_back(instr);
        break;
      case NodeKind::kBarrier: {
        ParStmtId owner = g.region(node.region).owner;
        PARCM_CHECK(owner.valid(), "barrier outside a parallel component");
        instr.op = Op::kBarrier;
        instr.stmt = owner;
        p.code.push_back(instr);
        break;
      }
      default:
        // kStart / kEnd / kSkip / kSynthetic / kParEnd.
        if (g.out_degree(n) > 1) {
          // The node is itself a nondeterministic branch point: lower it
          // straight to the choose (no separate nop).
          instr.op = Op::kChoose;
          p.code.push_back(instr);
          term_pc[n.index()] = first;
          continue;
        }
        instr.op = Op::kNop;
        p.code.push_back(instr);
        break;
    }
    Pc last = static_cast<Pc>(p.code.size() - 1);
    // A statement-bearing node with several out-edges needs an explicit
    // choose step after its effect (rare, but the IR permits it).
    if (g.out_degree(n) > 1 && node.kind != NodeKind::kTest &&
        node.kind != NodeKind::kParBegin) {
      p.code[last].target = last + 1;
      Instr choose;
      choose.op = Op::kChoose;
      choose.src = n;
      p.code.push_back(choose);
      last = static_cast<Pc>(p.code.size() - 1);
    }
    term_pc[n.index()] = last;
  }

  // Pass 2: patch control transfers now that every node has a pc.
  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);
    Instr& term = p.code[term_pc[n.index()]];
    if (node.kind == NodeKind::kParBegin) {
      // Control flow through a parallel statement is spawn/join, not the
      // ParBegin -> component-entry edges; the spawner resumes at the
      // ParEnd once every component task has halted.
      const ParStmt& stmt = g.par_stmt(node.par_stmt);
      term.target = node_pc[stmt.end.index()];
      continue;
    }
    avector<NodeId> succs = g.succs(n);
    if (node.kind == NodeKind::kTest) {
      PARCM_CHECK(succs.size() == 2, "test node without two successors");
      term.target = edge_target(g, node_pc, n, succs[0]);
      term.target2 = edge_target(g, node_pc, n, succs[1]);
      continue;
    }
    if (succs.empty()) {
      PARCM_CHECK(n == g.end(), "dead-end node is not e*");
      continue;  // target stays kHaltPc: the root thread terminates
    }
    if (succs.size() == 1) {
      term.target = edge_target(g, node_pc, n, succs[0]);
      continue;
    }
    term.choices_off = static_cast<std::uint32_t>(p.choice_pool.size());
    term.choices_len = static_cast<std::uint32_t>(succs.size());
    for (NodeId s : succs) {
      p.choice_pool.push_back(edge_target(g, node_pc, n, s));
    }
  }

  // Region / statement tables.
  p.region_entry.assign(g.num_regions(), kHaltPc);
  p.region_owner.assign(g.num_regions(), ParStmtId());
  p.region_entry[g.root_region().index()] = node_pc[g.start().index()];
  for (std::size_t s = 0; s < g.num_par_stmts(); ++s) {
    const ParStmt& stmt = g.par_stmt(ParStmtId(static_cast<std::uint32_t>(s)));
    VmParStmt vs;
    vs.parent = stmt.parent_region;
    vs.resume = node_pc[stmt.end.index()];
    for (RegionId comp : stmt.components) {
      vs.components.push_back(comp);
      p.region_entry[comp.index()] = node_pc[g.component_entry(comp).index()];
      p.region_owner[comp.index()] = stmt.id;
    }
    p.par_stmts.push_back(std::move(vs));
  }
  return p;
}

std::string VmProgram::to_string(const Graph* names) const {
  std::ostringstream os;
  os << "vm program: " << code.size() << " instrs, " << num_regions
     << " regions, " << par_stmts.size() << " par stmts"
     << (split_assignments ? " (split)" : " (atomic)") << "\n";
  auto pc_str = [](Pc pc) {
    return pc == kHaltPc ? std::string("halt") : std::to_string(pc);
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Instr& in = code[i];
    os << "  " << i << ": " << op_name(in.op);
    switch (in.op) {
      case Op::kEval:
        os << " acc <- "
           << (names != nullptr ? rhs_to_string(*names, in.rhs) : "rhs")
           << " -> " << pc_str(in.target);
        break;
      case Op::kStore:
        os << " "
           << (names != nullptr ? names->var_name(in.dst)
                                : "v" + std::to_string(in.dst.index()))
           << " <- acc -> " << pc_str(in.target);
        break;
      case Op::kAssign:
        os << " "
           << (names != nullptr ? names->var_name(in.dst)
                                : "v" + std::to_string(in.dst.index()))
           << " <- "
           << (names != nullptr ? rhs_to_string(*names, in.rhs) : "rhs")
           << " -> " << pc_str(in.target);
        break;
      case Op::kBranch:
        os << " " << pc_str(in.target) << " / " << pc_str(in.target2);
        break;
      case Op::kChoose: {
        os << " {";
        for (std::uint32_t c = 0; c < in.choices_len; ++c) {
          os << (c > 0 ? " " : "") << pc_str(choice_pool[in.choices_off + c]);
        }
        os << "}";
        break;
      }
      case Op::kSpawn:
        os << " stmt" << in.stmt.index() << " join -> "
           << pc_str(par_stmts[in.stmt.index()].resume);
        break;
      case Op::kBarrier:
        os << " stmt" << in.stmt.index() << " -> " << pc_str(in.target);
        break;
      case Op::kNop:
        os << " -> " << pc_str(in.target);
        break;
    }
    os << "   ; n" << in.src.value() << (in.counts ? " [cost 1]" : "") << "\n";
  }
  return os.str();
}

}  // namespace parcm::vm
