// Executional-improvement corpus harness.
//
// The paper's Theorem 3 claim is *per path*: on every execution path the
// transformed program is never slower under the bottleneck cost model. The
// analytic side (semantics/cost.hpp) walks the graph; this harness actually
// runs the lowered bytecode under the same branch oracles and holds the two
// implementations against each other while tallying before/after cost over
// a pooled random corpus — the empirical leg of ROADMAP open item 3, and
// the data source for BENCH_exec.json.
//
// Determinism contract: CorpusReport is a pure function of CorpusOptions
// (jobs only changes the wall clock, never the payload — the fan-out uses
// driver::run_batch's slot pattern with a sequential reduce), so its JSON
// rendering is byte-identical at any --jobs value.
#pragma once

#include <cstdint>
#include <string>

#include "workload/randomprog.hpp"

namespace parcm::vm {

struct CorpusOptions {
  std::uint64_t seed = 1;
  std::size_t programs = 64;
  // Shape-pool size: program i is structurally the (i mod shapes)-th shape
  // (verify::fuzz_program_pooled).
  std::size_t shapes = 16;
  // Oracle-driven paths sampled per program pair.
  std::size_t schedules = 8;
  std::size_t jobs = 1;  // 0 = hardware concurrency
  // bcm | lcm | pcm | naive | sinking | dce | full
  std::string pipeline = "pcm";
  std::size_t max_steps = 1u << 20;
  RandomProgramOptions gen;  // defaulted to verify::default_fuzz_gen()

  CorpusOptions();
};

struct CorpusReport {
  std::size_t programs = 0;
  std::size_t pairs = 0;  // (program, schedule) sampled paths
  // Summed over all sampled paths; "original" is the pipeline input,
  // "optimized" its output.
  std::uint64_t instrs_original = 0;
  std::uint64_t instrs_optimized = 0;
  std::uint64_t time_original = 0;  // bottleneck time (paper Sec. 3.3.1)
  std::uint64_t time_optimized = 0;
  std::uint64_t computations_original = 0;
  std::uint64_t computations_optimized = 0;
  // Per-path verdicts on bottleneck time.
  std::size_t improved = 0;
  std::size_t equal = 0;
  std::size_t regressed = 0;  // optimized strictly slower: a Theorem 3 bug
  // VM-vs-analytic disagreement on (time, computations) for the same
  // oracle: one of the two cost implementations is wrong.
  std::size_t cost_mismatches = 0;
  std::size_t skipped = 0;  // step budget exhausted on either side

  bool ok() const { return regressed == 0 && cost_mismatches == 0; }
  std::string summary() const;
  // "parcm-vm-corpus-v1": config + the tallies above. Timing-free, so the
  // document is byte-identical across runs and --jobs values.
  std::string to_json(bool pretty = false) const;
};

// Runs the corpus: generate pooled programs, transform through the named
// pipeline, sample `schedules` oracle-driven paths per pair on the VM, and
// cross-check every path's cost against the analytic walker.
CorpusReport run_exec_corpus(const CorpusOptions& options);

}  // namespace parcm::vm
