#include "vm/executor.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "driver/work_queue.hpp"
#include "obs/metrics.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace parcm::vm {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15uLL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9uLL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBuLL;
  return x ^ (x >> 31);
}

// Mirrors semantics/state.cpp exactly: wrapping arithmetic, division by
// zero yields 0, INT64_MIN / -1 wraps, comparisons yield 1/0. Load is
// how a variable is read (plain vector in the deterministic machine,
// seq_cst atomic in the parallel one).
template <class Load>
std::int64_t eval_with(const Rhs& rhs, Load&& load) {
  auto operand = [&load](const Operand& op) {
    return op.is_var() ? load(op.var_id()) : op.const_value();
  };
  if (rhs.is_trivial()) return operand(rhs.trivial());
  const Term& t = rhs.term();
  std::int64_t a = operand(t.lhs);
  std::int64_t b = operand(t.rhs);
  switch (t.op) {
    case BinOp::kAdd: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
    case BinOp::kSub: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
    case BinOp::kMul: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
    case BinOp::kDiv:
      if (b == 0) return 0;
      if (b == -1) return static_cast<std::int64_t>(
          -static_cast<std::uint64_t>(a));
      return a / b;
    case BinOp::kLt: return a < b;
    case BinOp::kLe: return a <= b;
    case BinOp::kGt: return a > b;
    case BinOp::kGe: return a >= b;
    case BinOp::kEq: return a == b;
    case BinOp::kNe: return a != b;
  }
  PARCM_CHECK(false, "unknown BinOp in vm eval");
}

enum class StepOutcome : std::uint8_t { kContinue, kParked, kHalted };

// ---------------------------------------------------------------------------
// Deterministic machine: one OS thread, every instruction a schedule point.
// Shared by the seeded mode (rng picks the next runnable task) and the
// cost mode (oracle picks branches, phase algebra accumulates the paper's
// bottleneck time).
// ---------------------------------------------------------------------------

class DetMachine {
 public:
  explicit DetMachine(const VmProgram& p) : p_(p) {}

  // One registry update per machine, not per run: SeededRunner executes
  // hundreds of schedules per differential check, and the registry's
  // mutex+lookup would otherwise show up in the oracle's throughput.
  ~DetMachine() {
    if (instrs_total_ > 0) PARCM_OBS_COUNT("vm.instrs_executed", instrs_total_);
  }

  // Reusable: every run reassigns the full machine state (the vectors keep
  // their capacity, which is what makes SeededRunner cheap per run).
  ExecResult run(Rng* rng, BranchOracle* oracle, const ExecLimits& limits) {
    rng_ = rng;
    oracle_ = oracle;
    limits_ = limits;
    ExecResult res;
    store_.assign(p_.num_vars, 0);
    tasks_.assign(p_.num_regions, Task{});
    stmts_.assign(p_.par_stmts.size(), StmtState{});
    ready_.clear();
    if (!visits_.empty()) visits_.clear();
    const bool cost = oracle_ != nullptr;
    tasks_[0].pc = p_.root_entry();
    if (cost) tasks_[0].phases.assign(1, 0);
    ready_.push_back(RegionId(0));
    bool root_halted = false;

    while (!ready_.empty()) {
      if (res.instrs >= limits_.max_steps) {
        res.store = store_;  // partial store: diagnostics only
        instrs_total_ += res.instrs;
        return res;  // ok stays false: budget exhausted
      }
      std::size_t pick = 0;
      if (rng_ != nullptr && ready_.size() > 1) {
        if (limits_.schedule_bias == 0 || rng_->below(8) == 0) {
          pick = rng_->below(ready_.size());
        } else if (limits_.schedule_bias > 0) {
          pick = ready_.size() - 1;
        }
      }
      RegionId r = ready_[pick];
      if (tasks_[r.index()].pc == kHaltPc) {
        // Resumed past its last instruction: a barrier that was the final
        // statement of its component pre-advanced the pc to the component
        // exit before parking. Halting is the whole step.
        ready_[pick] = ready_.back();
        ready_.pop_back();
        on_halt(r, cost, &root_halted);
        continue;
      }
      StepOutcome out = step(r, cost, &res);
      ++res.instrs;
      if (out != StepOutcome::kContinue) {
        ready_[pick] = ready_.back();
        ready_.pop_back();
        if (out == StepOutcome::kHalted) on_halt(r, cost, &root_halted);
      }
    }

    res.ok = root_halted;
    res.deadlocked = !root_halted;
    res.store = store_;
    if (cost) {
      for (std::uint64_t ph : tasks_[0].phases) res.time += ph;
    }
    instrs_total_ += res.instrs;
    return res;
  }

 private:
  struct Task {
    Pc pc = kHaltPc;
    std::int64_t acc = 0;
    std::vector<std::uint64_t> phases;  // cost mode only
  };
  struct StmtState {
    std::size_t live = 0;
    std::vector<RegionId> waiting;
  };

  StepOutcome step(RegionId r, bool cost, ExecResult* res) {
    Task& t = tasks_[r.index()];
    const Instr& in = p_.code[t.pc];
    auto load = [this](VarId v) { return store_[v.index()]; };
    switch (in.op) {
      case Op::kNop:
        return advance(t, in.target);
      case Op::kEval:
        if (cost && in.counts) {
          t.phases.back() += 1;
          res->computations += 1;
        }
        t.acc = eval_with(in.rhs, load);
        return advance(t, in.target);
      case Op::kStore:
        store_[in.dst.index()] = t.acc;
        return advance(t, in.target);
      case Op::kAssign:
        if (cost && in.counts) {
          t.phases.back() += 1;
          res->computations += 1;
        }
        store_[in.dst.index()] = eval_with(in.rhs, load);
        return advance(t, in.target);
      case Op::kBranch: {
        std::size_t idx =
            oracle_ != nullptr
                ? oracle_->choose(in.src, visits_[in.src.value()]++, 2)
                : (eval_with(in.rhs, load) != 0 ? 0 : 1);
        return advance(t, idx == 0 ? in.target : in.target2);
      }
      case Op::kChoose: {
        std::size_t idx =
            oracle_ != nullptr
                ? oracle_->choose(in.src, visits_[in.src.value()]++,
                                  in.choices_len)
                : rng_->below(in.choices_len);
        return advance(t, p_.choice_pool[in.choices_off + idx]);
      }
      case Op::kSpawn: {
        const VmParStmt& s = p_.par_stmts[in.stmt.index()];
        StmtState& st = stmts_[in.stmt.index()];
        st.live = s.components.size();
        st.waiting.clear();
        t.pc = s.resume;  // park on the join; the last child re-enqueues us
        for (RegionId comp : s.components) {
          Task& c = tasks_[comp.index()];
          c.pc = p_.region_entry[comp.index()];
          c.acc = 0;
          if (cost) c.phases.assign(1, 0);
          ready_.push_back(comp);
        }
        return StepOutcome::kParked;
      }
      case Op::kBarrier: {
        StmtState& st = stmts_[in.stmt.index()];
        if (cost) t.phases.push_back(0);  // next phase of this thread
        t.pc = in.target;  // pre-advance: release just re-enqueues
        st.waiting.push_back(r);
        if (st.waiting.size() == st.live) {
          for (RegionId w : st.waiting) ready_.push_back(w);
          st.waiting.clear();
        }
        return StepOutcome::kParked;
      }
    }
    PARCM_CHECK(false, "unknown vm opcode");
  }

  static StepOutcome advance(Task& t, Pc target) {
    if (target == kHaltPc) return StepOutcome::kHalted;
    t.pc = target;
    return StepOutcome::kContinue;
  }

  void on_halt(RegionId r, bool cost, bool* root_halted) {
    ParStmtId owner = p_.region_owner[r.index()];
    if (!owner.valid()) {
      *root_halted = true;
      return;
    }
    const VmParStmt& s = p_.par_stmts[owner.index()];
    StmtState& st = stmts_[owner.index()];
    PARCM_CHECK(st.live > 0, "component halted twice");
    --st.live;
    if (st.live == 0) {
      // Join: fold the components' phase vectors into the spawner's current
      // phase — per barrier phase the bottleneck component pays, exactly
      // CostWalker's combination.
      if (cost) {
        Task& parent = tasks_[s.parent.index()];
        std::size_t max_phases = 0;
        for (RegionId comp : s.components) {
          max_phases = std::max(max_phases, tasks_[comp.index()].phases.size());
        }
        for (std::size_t ph = 0; ph < max_phases; ++ph) {
          std::uint64_t bottleneck = 0;
          for (RegionId comp : s.components) {
            const auto& phases = tasks_[comp.index()].phases;
            if (ph < phases.size()) {
              bottleneck = std::max(bottleneck, phases[ph]);
            }
          }
          parent.phases.back() += bottleneck;
        }
      }
      ready_.push_back(s.parent);
      return;
    }
    // A sibling may be the last one a pending barrier was waiting for: a
    // terminated component is excused from the collective (the
    // zero-statement-component case — without this re-check the barrier
    // would deadlock).
    if (!st.waiting.empty() && st.waiting.size() == st.live) {
      for (RegionId w : st.waiting) ready_.push_back(w);
      st.waiting.clear();
    }
  }

  const VmProgram& p_;
  Rng* rng_ = nullptr;
  BranchOracle* oracle_ = nullptr;
  ExecLimits limits_;
  std::vector<std::int64_t> store_;
  std::vector<Task> tasks_;
  std::vector<StmtState> stmts_;
  std::vector<RegionId> ready_;
  std::unordered_map<std::uint32_t, std::size_t> visits_;
  std::uint64_t instrs_total_ = 0;
};

// ---------------------------------------------------------------------------
// Parallel machine: par components as tasks on Chase-Lev deques, shared
// store in seq_cst atomics. Task structs are plain: ownership transfers
// through deque pushes (release) and steals (seq_cst/acquire), and every
// park/unpark edge goes through the owning statement's mutex, so all task
// writes happen-before the next runner's reads.
// ---------------------------------------------------------------------------

class ParMachine {
 public:
  ParMachine(const VmProgram& p, const ParallelOptions& opts)
      : p_(p), opts_(opts) {}

  ExecResult run() {
    std::size_t workers = opts_.workers != 0
                              ? opts_.workers
                              : std::thread::hardware_concurrency();
    workers = std::max<std::size_t>(1, std::min(workers, p_.num_regions));

    store_ = std::make_unique<std::atomic<std::int64_t>[]>(p_.num_vars);
    for (std::size_t i = 0; i < p_.num_vars; ++i) store_[i].store(0);
    tasks_.assign(p_.num_regions, Task{});
    stmts_ = std::make_unique<StmtState[]>(p_.par_stmts.size());
    budget_.store(static_cast<std::int64_t>(opts_.max_steps));
    for (std::size_t w = 0; w < workers; ++w) {
      deques_.push_back(
          std::make_unique<driver::WorkStealingDeque>(p_.num_regions + 1));
    }

    tasks_[0].pc = p_.root_entry();
    in_flight_.store(1);
    PARCM_CHECK(deques_[0]->push(0), "vm deque full at seed");

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([this, w] { worker(w); });
    }
    for (std::thread& th : pool) th.join();

    ExecResult res;
    res.ok = done_.load() && !aborted_.load();
    res.deadlocked = deadlocked_.load();
    res.instrs = instrs_.load();
    res.store.resize(p_.num_vars);
    for (std::size_t i = 0; i < p_.num_vars; ++i) {
      res.store[i] = store_[i].load();
    }
    return res;
  }

 private:
  struct Task {
    Pc pc = kHaltPc;
    std::int64_t acc = 0;
  };
  struct StmtState {
    std::mutex m;
    std::size_t live = 0;
    std::vector<RegionId> waiting;
  };

  void worker(std::size_t w) {
    Rng rng(mix(opts_.seed ^ mix(w + 1)));
    // Seeded victim rotation: each worker probes the others in its own
    // pseudo-random order, so repeated runs explore different steal
    // patterns deterministically per (seed, worker).
    std::vector<std::size_t> victims;
    for (std::size_t v = 0; v < deques_.size(); ++v) {
      if (v != w) victims.push_back(v);
    }
    for (std::size_t i = victims.size(); i > 1; --i) {
      std::swap(victims[i - 1], victims[rng.below(i)]);
    }

    std::uint64_t local_instrs = 0;
    auto wait_start = std::chrono::steady_clock::now();
    while (!done_.load(std::memory_order_acquire) && !aborted_.load()) {
      std::size_t job = 0;
      bool got = deques_[w]->pop(&job);
      for (std::size_t k = 0; !got && k < victims.size(); ++k) {
        got = deques_[victims[k]]->steal(&job);
      }
      if (!got) {
        if (in_flight_.load() == 0 && !done_.load()) {
          // Nothing queued, nothing running, program not terminated: every
          // remaining task is parked forever. Validated graphs cannot get
          // here; flag instead of hanging.
          deadlocked_.store(true);
          done_.store(true, std::memory_order_release);
        }
        std::this_thread::yield();
        continue;
      }
      PARCM_OBS_HIST(
          "vm.schedule_latency_ns",
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - wait_start)
                  .count()));
      run_task(RegionId(static_cast<std::uint32_t>(job)), w, &local_instrs);
      wait_start = std::chrono::steady_clock::now();
    }
    instrs_.fetch_add(local_instrs);
    PARCM_OBS_COUNT("vm.instrs_executed", local_instrs);
  }

  void run_task(RegionId r, std::size_t w, std::uint64_t* local_instrs) {
    for (;;) {
      if (tasks_[r.index()].pc == kHaltPc) {
        // Resumed at the component exit (trailing barrier): halt directly.
        on_halt(r, w);
        return;
      }
      ++*local_instrs;
      if ((*local_instrs & 0x3FF) == 0 &&
          budget_.fetch_sub(0x400) <= 0) {
        aborted_.store(true);
        done_.store(true, std::memory_order_release);
        return;
      }
      StepOutcome out = step(r, w);
      // After kParked the task may already be running on another worker
      // (barrier release re-enqueued it); it must not be touched here.
      if (out == StepOutcome::kParked) return;
      if (out == StepOutcome::kHalted) {
        on_halt(r, w);
        return;
      }
    }
  }

  void enqueue(RegionId r, std::size_t w) {
    in_flight_.fetch_add(1);
    PARCM_CHECK(deques_[w]->push(r.index()), "vm deque overflow");
  }

  StepOutcome step(RegionId r, std::size_t w) {
    Task& t = tasks_[r.index()];
    const Instr& in = p_.code[t.pc];
    auto load = [this](VarId v) { return store_[v.index()].load(); };
    switch (in.op) {
      case Op::kNop:
        return advance(t, in.target);
      case Op::kEval:
        t.acc = eval_with(in.rhs, load);
        return advance(t, in.target);
      case Op::kStore:
        store_[in.dst.index()].store(t.acc);
        return advance(t, in.target);
      case Op::kAssign:
        store_[in.dst.index()].store(eval_with(in.rhs, load));
        return advance(t, in.target);
      case Op::kBranch:
        return advance(t, eval_with(in.rhs, load) != 0 ? in.target
                                                       : in.target2);
      case Op::kChoose: {
        // Any alternative is a legal behaviour; a cheap hash of (worker,
        // instr count) decorrelates repeated visits without carrying a
        // per-worker rng through the hot path.
        std::size_t idx = static_cast<std::size_t>(
            mix(opts_.seed ^ (w << 20) ^ choice_salt_.fetch_add(1)) %
            in.choices_len);
        return advance(t, p_.choice_pool[in.choices_off + idx]);
      }
      case Op::kSpawn: {
        const VmParStmt& s = p_.par_stmts[in.stmt.index()];
        StmtState& st = stmts_[in.stmt.index()];
        {
          std::lock_guard<std::mutex> lock(st.m);
          st.live = s.components.size();
          st.waiting.clear();
        }
        t.pc = s.resume;  // fully parked before any child can see the stmt
        for (RegionId comp : s.components) {
          Task& c = tasks_[comp.index()];
          c.pc = p_.region_entry[comp.index()];
          c.acc = 0;
          enqueue(comp, w);
        }
        return StepOutcome::kParked;
      }
      case Op::kBarrier: {
        StmtState& st = stmts_[in.stmt.index()];
        t.pc = in.target;  // pre-advance before publishing ourselves
        std::vector<RegionId> release;
        {
          std::lock_guard<std::mutex> lock(st.m);
          st.waiting.push_back(r);
          if (st.waiting.size() == st.live) {
            release.swap(st.waiting);
          }
        }
        for (RegionId waiter : release) enqueue(waiter, w);
        return StepOutcome::kParked;
      }
    }
    PARCM_CHECK(false, "unknown vm opcode");
  }

  static StepOutcome advance(Task& t, Pc target) {
    if (target == kHaltPc) return StepOutcome::kHalted;
    t.pc = target;
    return StepOutcome::kContinue;
  }

  void on_halt(RegionId r, std::size_t w) {
    ParStmtId owner = p_.region_owner[r.index()];
    if (!owner.valid()) {
      done_.store(true, std::memory_order_release);
      in_flight_.fetch_sub(1);
      return;
    }
    const VmParStmt& s = p_.par_stmts[owner.index()];
    StmtState& st = stmts_[owner.index()];
    bool join = false;
    std::vector<RegionId> release;
    {
      std::lock_guard<std::mutex> lock(st.m);
      PARCM_CHECK(st.live > 0, "vm component halted twice");
      --st.live;
      if (st.live == 0) {
        join = true;
      } else if (!st.waiting.empty() && st.waiting.size() == st.live) {
        // Terminated components are excused from the collective: the last
        // live sibling may already be waiting (zero-statement components).
        release.swap(st.waiting);
      }
    }
    if (join) enqueue(s.parent, w);
    for (RegionId waiter : release) enqueue(waiter, w);
    // Decrement last: while this halt's pushes are pending the machine is
    // never observed with zero in-flight tasks.
    in_flight_.fetch_sub(1);
  }

  const VmProgram& p_;
  ParallelOptions opts_;
  std::unique_ptr<std::atomic<std::int64_t>[]> store_;
  std::vector<Task> tasks_;
  std::unique_ptr<StmtState[]> stmts_;
  std::vector<std::unique_ptr<driver::WorkStealingDeque>> deques_;
  std::atomic<bool> done_{false};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> deadlocked_{false};
  std::atomic<std::int64_t> budget_{0};
  std::atomic<std::uint64_t> instrs_{0};
  std::atomic<std::uint64_t> choice_salt_{0};
  std::atomic<std::int64_t> in_flight_{0};
};

}  // namespace

ExecResult run_seeded(const VmProgram& p, std::uint64_t seed,
                      const ExecLimits& limits) {
  Rng rng(mix(seed));
  return DetMachine(p).run(&rng, nullptr, limits);
}

ExecResult run_with_oracle(const VmProgram& p, BranchOracle& oracle,
                           const ExecLimits& limits) {
  return DetMachine(p).run(nullptr, &oracle, limits);
}

struct SeededRunner::Impl {
  explicit Impl(const VmProgram& p) : machine(p) {}
  DetMachine machine;
};

SeededRunner::SeededRunner(const VmProgram& p)
    : impl_(std::make_unique<Impl>(p)) {}

SeededRunner::~SeededRunner() = default;

ExecResult SeededRunner::run(std::uint64_t seed, const ExecLimits& limits) {
  Rng rng(mix(seed));
  return impl_->machine.run(&rng, nullptr, limits);
}

ExecResult run_parallel(const VmProgram& p, const ParallelOptions& opts) {
  return ParMachine(p, opts).run();
}

}  // namespace parcm::vm
