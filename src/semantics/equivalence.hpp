// Sequential-consistency checking by exhaustive interleaving enumeration
// (paper Sec. 1, Figs. 3/4).
//
// A transformation preserves sequential consistency iff every observable
// behaviour of the transformed program is an observable behaviour of the
// original: finals(transformed)|vars(original) ⊆ finals(original). Code
// motion never removes behaviours either, so `behaviours_preserved`
// (equality) is the expected verdict for admissible transformations.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "semantics/enumerator.hpp"

namespace parcm {

struct ConsistencyVerdict {
  bool sequentially_consistent = false;  // transformed ⊆ original
  bool behaviours_preserved = false;     // and original ⊆ transformed
  bool exhausted = true;                 // both enumerations complete
  std::size_t original_behaviours = 0;
  std::size_t transformed_behaviours = 0;
  // A transformed-only final state (ordered as `observed`), if any.
  std::optional<std::vector<std::int64_t>> violation_witness;
};

// `observed` defaults (empty vector) to all variables of `original`, in
// interning order; variables added by the transformation are ignored.
ConsistencyVerdict check_sequential_consistency(
    const Graph& original, const Graph& transformed,
    std::vector<std::string> observed = {},
    const EnumerationOptions& options = {});

// All variable names of g in interning order.
std::vector<std::string> all_var_names(const Graph& g);

}  // namespace parcm
