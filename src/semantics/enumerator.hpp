// Exhaustive exploration of all interleavings x branch choices.
//
// Explores the product of control configurations and data states with
// memoization, collecting the set of observable final states. This is the
// ground truth behind the sequential-consistency checks of Figures 3 and 4:
// a transformation preserves sequential consistency iff every observable
// final state of the transformed program (projected onto the original
// variables) is a final state of the original program.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ir/graph.hpp"
#include "semantics/interpreter.hpp"

namespace parcm {

struct EnumerationOptions {
  std::size_t max_states = 1u << 20;  // distinct (config, data) pairs
  // Initial values for named variables (unnamed default to 0).
  std::vector<std::pair<std::string, std::int64_t>> initial;
  // true: assignments are atomic. false: the paper's Remark 2.1 semantics —
  // evaluating the right-hand side and writing the left-hand side are two
  // steps that other threads may interleave (x := t behaves as
  // x_t := t; x := x_t with a thread-private x_t). The paper's correctness
  // notion for parallel code motion is stated against the split semantics.
  bool atomic_assignments = true;
  // Partial-order reduction: when a runnable thread's next step is
  // *invisible* (a single-successor non-test node that is a skip, or an
  // assignment touching only variables no other component accesses), take
  // that step alone instead of branching over every thread. Such a step
  // commutes with all other threads' steps and cannot disable them, so the
  // set of observable final states is unchanged (verified against full
  // exploration in tests/test_por.cpp). Assumes no cycle consists purely of
  // single-successor nodes (true for all builder/language-generated
  // graphs).
  bool partial_order_reduction = false;
};

struct EnumerationResult {
  // One entry per observable final state: values of the observed variables
  // in the order requested.
  std::set<std::vector<std::int64_t>> finals;
  bool exhausted = true;  // false if max_states was hit
  std::size_t states_explored = 0;
};

// `observed`: variable names projected into the result; names missing from
// the graph read as 0 (so the same list works for original and transformed
// programs).
EnumerationResult enumerate_executions(const Graph& g,
                                       const std::vector<std::string>& observed,
                                       const EnumerationOptions& options = {});

}  // namespace parcm
