#include "semantics/product.hpp"

#include <deque>
#include <unordered_map>

#include "dfa/seq_solver.hpp"
#include "obs/metrics.hpp"
#include "semantics/interpreter.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

namespace {

// Product node identity: (original node executed, configuration reached).
struct Key {
  std::uint32_t origin;
  std::vector<std::uint32_t> config;

  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return ConfigHash{}(k.config) * 1099511628211ull ^ k.origin;
  }
};

}  // namespace

ProductProgram build_product(const Graph& g, std::size_t max_states) {
  PARCM_OBS_TIMER("semantics.build_product");
  for (NodeId n : g.all_nodes()) {
    PARCM_CHECK(g.node(n).kind != NodeKind::kBarrier,
                "product construction does not support barriers (collective "
                "releases have no single-node occurrence)");
  }
  ProductProgram pp;
  Graph& pg = pp.graph;

  // Mirror the variable numbering so statements can be copied verbatim.
  for (std::size_t v = 0; v < g.num_vars(); ++v) {
    pg.intern_var(g.var_name(VarId(static_cast<VarId::underlying>(v))));
  }

  pp.origin.assign(2, NodeId());
  pp.origin[pg.start().index()] = g.start();
  pp.origin[pg.end().index()] = g.end();

  std::unordered_map<Key, NodeId, KeyHash> index;
  std::deque<std::pair<Config, NodeId>> frontier;
  frontier.emplace_back(Config::initial(g), pg.start());

  auto make_node = [&](NodeId orig) {
    const Node& node = g.node(orig);
    NodeId pn;
    if (node.kind == NodeKind::kAssign) {
      pn = pg.new_assign(pg.root_region(), node.lhs, node.rhs);
    } else {
      pn = pg.new_node(NodeKind::kSynthetic, pg.root_region());
    }
    pp.origin.push_back(orig);
    return pn;
  };

  while (!frontier.empty()) {
    auto [c, pnode] = std::move(frontier.front());
    frontier.pop_front();

    for (const Transition& t : enabled_transitions(g, c)) {
      if (t.node == g.end()) {
        pg.add_edge(pnode, pg.end());
        continue;
      }
      Config c2 = apply_transition(g, c, t);
      if (t.node == g.start()) {
        // Executing s* is folded into the product start node (s* is skip
        // and runs exactly once, so no separate occurrence is needed).
        frontier.emplace_back(std::move(c2), pg.start());
        continue;
      }
      Key key{t.node.value(), c2.encode()};
      auto it = index.find(key);
      if (it == index.end()) {
        if (index.size() >= max_states) {
          pp.exhausted = false;
          continue;
        }
        NodeId pn = make_node(t.node);
        it = index.emplace(std::move(key), pn).first;
        frontier.emplace_back(std::move(c2), pn);
      }
      pg.add_edge(pnode, it->second);
    }
  }

  pp.num_configs = pp.origin.size();
  PARCM_OBS_COUNT("semantics.product.builds", 1);
  PARCM_OBS_COUNT("semantics.product.nodes", pg.num_nodes());
  if (!pp.exhausted) PARCM_OBS_COUNT("semantics.product.truncated", 1);
  if (g.num_nodes() > 0) {
    // Product-state blowup of the most recent construction.
    PARCM_OBS_GAUGE("semantics.product.last_blowup",
                    static_cast<double>(pg.num_nodes()) /
                        static_cast<double>(g.num_nodes()));
  }
  return pp;
}

PmopResult solve_pmop_via_product(const Graph& g, const ProductProgram& prod,
                                  const PackedProblem& p) {
  PARCM_CHECK(prod.exhausted,
              "PMOP reference requires a complete product program");
  SeqProblem sp;
  sp.dir = p.dir;
  sp.num_terms = p.num_terms;
  sp.boundary = p.boundary;
  sp.gen.reserve(prod.graph.num_nodes());
  sp.kill.reserve(prod.graph.num_nodes());
  for (NodeId q : prod.graph.all_nodes()) {
    NodeId orig = prod.origin[q.index()];
    sp.gen.push_back(p.gen[orig.index()]);
    sp.kill.push_back(p.kill[orig.index()]);
  }
  SeqResult sr = solve_seq(prod.graph, sp);

  PmopResult res;
  res.entry.assign(g.num_nodes(), BitVector(p.num_terms, true));
  res.out.assign(g.num_nodes(), BitVector(p.num_terms, true));
  for (NodeId q : prod.graph.all_nodes()) {
    NodeId orig = prod.origin[q.index()];
    res.entry[orig.index()] &= sr.entry[q.index()];
    res.out[orig.index()] &= sr.out[q.index()];
  }
  return res;
}

}  // namespace parcm
