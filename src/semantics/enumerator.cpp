#include "semantics/enumerator.hpp"

#include <deque>
#include <unordered_set>

#include "analyses/cache.hpp"
#include "ir/regions.hpp"
#include "obs/metrics.hpp"
#include "support/diagnostics.hpp"

namespace parcm {

namespace {

// Variables accessed by node n (lhs, rhs operands, test condition).
void collect_accessed(const Graph& g, NodeId n, std::vector<VarId>* out) {
  const Node& node = g.node(n);
  auto add_rhs = [&](const Rhs& rhs) {
    if (rhs.is_term()) {
      if (rhs.term().lhs.is_var()) out->push_back(rhs.term().lhs.var_id());
      if (rhs.term().rhs.is_var()) out->push_back(rhs.term().rhs.var_id());
    } else if (rhs.trivial().is_var()) {
      out->push_back(rhs.trivial().var_id());
    }
  };
  if (node.kind == NodeKind::kAssign) {
    out->push_back(node.lhs);
    add_rhs(node.rhs);
  } else if (node.kind == NodeKind::kTest) {
    add_rhs(*node.cond);
  }
}

// invisible[n]: executing n commutes with every step of every other thread
// and offers no choice — safe to take alone under partial-order reduction.
std::vector<char> compute_invisible(const Graph& g) {
  // Interference is queried once per enumeration; the state-space searches
  // re-enumerate the same graphs, so share one InterleavingInfo per
  // (graph, version) through the analysis cache.
  std::shared_ptr<const InterleavingInfo> itlv_ptr =
      analysis_cache().interleaving(g);
  const InterleavingInfo& itlv = *itlv_ptr;
  // contested[v]: two potentially-parallel nodes both access v.
  std::vector<char> contested(g.num_vars(), 0);
  std::vector<VarId> mine, theirs;
  for (NodeId n : g.all_nodes()) {
    mine.clear();
    collect_accessed(g, n, &mine);
    if (mine.empty()) continue;
    for (NodeId m : itlv.preds(g, n)) {
      theirs.clear();
      collect_accessed(g, m, &theirs);
      for (VarId v : mine) {
        for (VarId w : theirs) {
          if (v == w) contested[v.index()] = 1;
        }
      }
    }
  }

  std::vector<char> invisible(g.num_nodes(), 0);
  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);
    if (node.kind == NodeKind::kParBegin) {
      invisible[n.index()] = 1;  // deterministic spawn, no data
      continue;
    }
    if (node.kind == NodeKind::kTest || node.kind == NodeKind::kBarrier ||
        node.out_edges.size() > 1) {
      continue;
    }
    if (node.kind == NodeKind::kAssign) {
      mine.clear();
      collect_accessed(g, n, &mine);
      bool clean = true;
      for (VarId v : mine) clean = clean && !contested[v.index()];
      invisible[n.index()] = clean;
    } else {
      invisible[n.index()] = 1;  // skip / synthetic / parend / start / end
    }
  }
  return invisible;
}

// Per-thread progress through a (split) assignment: absent, or the value
// the pending write will store.
using Pending = std::vector<std::optional<std::int64_t>>;  // per region

struct StateKey {
  std::vector<std::uint32_t> config;
  std::vector<std::int64_t> data;
  std::vector<std::int64_t> pending;  // interleaved (flag, value) pairs

  bool operator==(const StateKey&) const = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const {
    std::size_t h = ConfigHash{}(k.config);
    auto mix = [&h](std::int64_t v) {
      h ^= static_cast<std::size_t>(v) + 0x9E3779B97F4A7C15ull + (h << 6) +
           (h >> 2);
    };
    for (std::int64_t v : k.data) mix(v);
    for (std::int64_t v : k.pending) mix(v);
    return h;
  }
};

std::vector<std::int64_t> encode_pending(const Pending& pending) {
  std::vector<std::int64_t> out;
  out.reserve(pending.size() * 2);
  for (const auto& p : pending) {
    out.push_back(p.has_value() ? 1 : 0);
    out.push_back(p.value_or(0));
  }
  return out;
}

struct ExplorationState {
  Config config;
  VarState vars;
  Pending pending;
};

}  // namespace

EnumerationResult enumerate_executions(const Graph& g,
                                       const std::vector<std::string>& observed,
                                       const EnumerationOptions& options) {
  PARCM_OBS_TIMER("semantics.enumerate");
  EnumerationResult res;

  VarState init(g.num_vars());
  for (const auto& [name, value] : options.initial) {
    if (auto v = g.find_var(name)) init.set(*v, value);
  }

  std::vector<VarId> observed_ids;
  observed_ids.reserve(observed.size());
  for (const std::string& name : observed) {
    observed_ids.push_back(g.find_var(name).value_or(VarId()));
  }
  auto project = [&](const VarState& s) {
    std::vector<std::int64_t> out;
    out.reserve(observed_ids.size());
    for (VarId v : observed_ids) out.push_back(v.valid() ? s.get(v) : 0);
    return out;
  };

  auto make_key = [&](const ExplorationState& st) {
    return StateKey{st.config.encode(), st.vars.values(),
                    options.atomic_assignments ? std::vector<std::int64_t>{}
                                               : encode_pending(st.pending)};
  };

  std::vector<char> invisible;
  if (options.partial_order_reduction) invisible = compute_invisible(g);

  std::unordered_set<StateKey, StateKeyHash> seen;
  std::deque<ExplorationState> frontier;
  ExplorationState init_state{Config::initial(g), init,
                              Pending(g.num_regions())};
  seen.insert(make_key(init_state));
  frontier.push_back(std::move(init_state));

  auto visit = [&](ExplorationState next) {
    StateKey key = make_key(next);
    if (seen.contains(key)) return;
    if (seen.size() >= options.max_states) {
      res.exhausted = false;
      return;
    }
    seen.insert(std::move(key));
    frontier.push_back(std::move(next));
  };

  while (!frontier.empty()) {
    ExplorationState st = std::move(frontier.front());
    frontier.pop_front();
    ++res.states_explored;

    if (st.config.terminal()) {
      res.finals.insert(project(st.vars));
      continue;
    }

    // Barrier releases are deterministic, data-free and their threads are
    // blocked for everything else: take them alone, eagerly.
    {
      std::vector<Transition> releases =
          barrier_release_transitions(g, st.config);
      if (!releases.empty()) {
        ExplorationState next = st;
        next.config = apply_transition(g, st.config, releases.front());
        visit(std::move(next));
        continue;
      }
    }

    // Partial-order reduction: if some runnable thread's next step is
    // invisible, explore only that thread.
    RegionId only;
    if (options.partial_order_reduction) {
      for (std::size_t i = 0; i < g.num_regions(); ++i) {
        RegionId r(static_cast<RegionId::underlying>(i));
        if (!st.config.active(r) || !thread_runnable(g, st.config, r)) {
          continue;
        }
        if (invisible[st.config.pc(r).index()]) {
          only = r;
          break;
        }
      }
    }

    bool any = false;
    for (std::size_t i = 0; i < g.num_regions(); ++i) {
      RegionId r(static_cast<RegionId::underlying>(i));
      if (only.valid() && r != only) continue;
      if (!st.config.active(r) || !thread_runnable(g, st.config, r)) continue;
      NodeId n = st.config.pc(r);
      const Node& node = g.node(n);

      // Split semantics, first half: evaluate the rhs into the thread-
      // private pending slot; control does not move yet.
      if (!options.atomic_assignments && node.kind == NodeKind::kAssign &&
          !st.pending[r.index()].has_value()) {
        ExplorationState next = st;
        next.pending[r.index()] = eval_rhs(st.vars, node.rhs);
        visit(std::move(next));
        any = true;
        continue;
      }

      std::vector<Transition> ts;
      append_thread_transitions(g, st.config, r, &st.vars, &ts);
      for (const Transition& t : ts) {
        ExplorationState next = st;
        if (node.kind == NodeKind::kAssign) {
          if (options.atomic_assignments) {
            execute_node(g, n, next.vars);
          } else {
            next.vars.set(node.lhs, *st.pending[r.index()]);
            next.pending[r.index()].reset();
          }
        } else {
          execute_node(g, n, next.vars);
        }
        next.config = apply_transition(g, st.config, t);
        visit(std::move(next));
        any = true;
      }
    }
    PARCM_CHECK(any, "deadlocked configuration during enumeration");
  }

  PARCM_OBS_COUNT("semantics.enum.runs", 1);
  PARCM_OBS_COUNT("semantics.enum.states_explored", res.states_explored);
  PARCM_OBS_COUNT("semantics.enum.finals", res.finals.size());
  if (!res.exhausted) PARCM_OBS_COUNT("semantics.enum.truncated", 1);
  return res;
}

}  // namespace parcm
