// The nondeterministic sequential product program — the "unfolded" parallel
// program making all interleavings explicit (paper Sec. 2 / Fig. 6).
//
// Product nodes are pairs (original node just executed, resulting control
// configuration); edges are the single-step transitions of the interleaving
// semantics. The product is an ordinary sequential flow graph, so plain MFP
// on it *is* MOP (distributive bitvector frameworks), and projecting back
// through the origin map yields the PMOP solution — the reference oracle
// for the Parallel Bitvector Coincidence Theorem 2.4.
#pragma once

#include <cstddef>
#include <vector>

#include "dfa/framework.hpp"
#include "ir/graph.hpp"

namespace parcm {

struct ProductProgram {
  Graph graph;  // sequential (num_par_stmts() == 0)
  // Per product node: the original node it executes. Product start/end map
  // to the original start/end.
  std::vector<NodeId> origin;
  bool exhausted = true;  // false if max_states was hit
  std::size_t num_configs = 0;
};

// Builds the product; test nodes are expanded nondeterministically (the
// product abstracts data, as the paper's analyses do).
ProductProgram build_product(const Graph& g, std::size_t max_states = 1u << 20);

struct PmopResult {
  // Per original node: meet over all product occurrences of the value at
  // the occurrence's directional entry / exit.
  std::vector<BitVector> entry;
  std::vector<BitVector> out;
};

// Path-based reference solution: runs the sequential solver over the
// product built from `g` and projects back. `p`'s sync policy and destroy
// sets are ignored — the product enumerates interference explicitly.
PmopResult solve_pmop_via_product(const Graph& g, const ProductProgram& prod,
                                  const PackedProblem& p);

}  // namespace parcm
