// Small-step interleaving semantics of parallel flow graphs.
//
// A configuration assigns a program counter to every *active* region: the
// root region runs the main thread; entering a parallel statement parks the
// spawning thread on the statement's ParEnd and activates one thread per
// component. A thread whose region r has pc on a ParEnd is runnable only
// once all components of that statement have terminated (synchronization).
// Since regions cannot be re-entered concurrently (no recursion), the
// region-indexed pc vector is a canonical, hashable machine state.
//
// A transition executes one node atomically and moves along one out-edge
// (the edge is absent when the node is e* or when the thread exits its
// component into the ParEnd). Data-aware callers restrict test-node
// transitions to the edge selected by the condition.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ir/graph.hpp"
#include "semantics/state.hpp"
#include "support/rng.hpp"

namespace parcm {

class Config {
 public:
  explicit Config(const Graph& g);

  static Config initial(const Graph& g);

  bool active(RegionId r) const { return pc_[r.index()].valid(); }
  NodeId pc(RegionId r) const { return pc_[r.index()]; }
  void set_pc(RegionId r, NodeId n) { pc_[r.index()] = n; }
  void clear_pc(RegionId r) { pc_[r.index()] = NodeId(); }

  // All threads have terminated (the main thread executed e*).
  bool terminal() const;

  // Canonical encoding for hashing / memoization.
  std::vector<std::uint32_t> encode() const;

  bool operator==(const Config&) const = default;

 private:
  std::vector<NodeId> pc_;  // indexed by RegionId; invalid = inactive
};

struct ConfigHash {
  std::size_t operator()(const std::vector<std::uint32_t>& v) const;
};

struct Transition {
  RegionId region;  // thread taking the step
  NodeId node;      // node executed
  EdgeId edge;      // out-edge taken; invalid when exiting to ParEnd or e*
  // Collective barrier release: when valid, every active component of the
  // statement is parked on a barrier node and all of them step together
  // (region/node/edge are unused). Terminated components are excused.
  ParStmtId barrier_stmt;
};

// True iff the thread of region r may take a step in c (its pc is set and,
// if parked on a ParEnd, all components of that statement have terminated).
// Threads parked on a barrier are never individually runnable; they move
// via barrier-release transitions.
bool thread_runnable(const Graph& g, const Config& c, RegionId r);

// Barrier releases enabled in c: one per parallel statement whose active
// components are all parked on barrier nodes (and at least one is).
std::vector<Transition> barrier_release_transitions(const Graph& g,
                                                    const Config& c);

// Transitions of region r's thread alone (empty if not runnable); with a
// data state, test nodes offer only the selected branch.
void append_thread_transitions(const Graph& g, const Config& c, RegionId r,
                               const VarState* s, std::vector<Transition>* out);

// Data-free enabled transitions (test nodes contribute both branches).
std::vector<Transition> enabled_transitions(const Graph& g, const Config& c);

// Restriction of enabled_transitions to the data state: test nodes only
// offer the edge their condition selects.
std::vector<Transition> enabled_transitions(const Graph& g, const Config& c,
                                            const VarState& s);

// Applies t (which must be enabled in c) without touching data.
Config apply_transition(const Graph& g, const Config& c, const Transition& t);

// A recorded execution: the exact transition sequence taken, replayable on
// the same graph for deterministic debugging of interleaving-dependent
// outcomes.
using Schedule = std::vector<Transition>;

// One random maximal execution. Returns the final state, or nullopt if
// max_steps was exhausted (e.g. a nondeterministic loop kept spinning).
// When `record` is non-null, the transition sequence is appended to it.
std::optional<VarState> run_random_schedule(const Graph& g, Rng& rng,
                                            std::size_t max_steps = 100000,
                                            Schedule* record = nullptr);

// Replays a recorded schedule step by step; throws InternalError if a step
// is not enabled (wrong graph or corrupted schedule). Returns the final
// state; nullopt if the schedule ends before the program terminates.
std::optional<VarState> replay_schedule(const Graph& g,
                                        const Schedule& schedule);

}  // namespace parcm
