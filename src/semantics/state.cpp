#include "semantics/state.hpp"

#include "support/diagnostics.hpp"

namespace parcm {

std::int64_t eval_operand(const VarState& s, const Operand& op) {
  return op.is_var() ? s.get(op.var_id()) : op.const_value();
}

namespace {
std::int64_t eval_term(const VarState& s, const Term& t) {
  std::int64_t a = eval_operand(s, t.lhs);
  std::int64_t b = eval_operand(s, t.rhs);
  switch (t.op) {
    case BinOp::kAdd: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
    case BinOp::kSub: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
    case BinOp::kMul: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
    case BinOp::kDiv:
      if (b == 0) return 0;
      // INT64_MIN / -1 would overflow; wrap like the other operators.
      if (b == -1) return static_cast<std::int64_t>(
          -static_cast<std::uint64_t>(a));
      return a / b;
    case BinOp::kLt: return a < b;
    case BinOp::kLe: return a <= b;
    case BinOp::kGt: return a > b;
    case BinOp::kGe: return a >= b;
    case BinOp::kEq: return a == b;
    case BinOp::kNe: return a != b;
  }
  PARCM_CHECK(false, "unknown BinOp in eval");
}
}  // namespace

std::int64_t eval_rhs(const VarState& s, const Rhs& rhs) {
  if (rhs.is_term()) return eval_term(s, rhs.term());
  return eval_operand(s, rhs.trivial());
}

void execute_node(const Graph& g, NodeId n, VarState& s) {
  const Node& node = g.node(n);
  if (node.kind == NodeKind::kAssign) {
    s.set(node.lhs, eval_rhs(s, node.rhs));
  }
}

bool eval_test(const Graph& g, NodeId n, const VarState& s) {
  const Node& node = g.node(n);
  PARCM_CHECK(node.kind == NodeKind::kTest && node.cond.has_value(),
              "eval_test on a non-test node");
  return eval_rhs(s, *node.cond) != 0;
}

}  // namespace parcm
