#include "semantics/equivalence.hpp"

#include <algorithm>

namespace parcm {

std::vector<std::string> all_var_names(const Graph& g) {
  std::vector<std::string> names;
  names.reserve(g.num_vars());
  for (std::size_t v = 0; v < g.num_vars(); ++v) {
    names.push_back(g.var_name(VarId(static_cast<VarId::underlying>(v))));
  }
  return names;
}

ConsistencyVerdict check_sequential_consistency(
    const Graph& original, const Graph& transformed,
    std::vector<std::string> observed, const EnumerationOptions& options) {
  if (observed.empty()) observed = all_var_names(original);

  EnumerationResult orig = enumerate_executions(original, observed, options);
  EnumerationResult trans = enumerate_executions(transformed, observed, options);

  ConsistencyVerdict v;
  v.exhausted = orig.exhausted && trans.exhausted;
  v.original_behaviours = orig.finals.size();
  v.transformed_behaviours = trans.finals.size();

  v.sequentially_consistent = true;
  for (const auto& s : trans.finals) {
    if (!orig.finals.contains(s)) {
      v.sequentially_consistent = false;
      v.violation_witness = s;
      break;
    }
  }
  v.behaviours_preserved =
      v.sequentially_consistent &&
      std::all_of(orig.finals.begin(), orig.finals.end(),
                  [&](const auto& s) { return trans.finals.contains(s); });
  return v;
}

}  // namespace parcm
