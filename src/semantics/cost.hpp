// The paper's execution-time measure (Sec. 3.3.1).
//
// Assignments with an operator on the right-hand side cost 1, trivial
// assignments and all skips/tests cost 0. The time of one execution is
// structural: the *sum* along sequential composition and the *maximum*
// across the components of a parallel statement (the bottleneck component
// pays). The computation count, by contrast, is the plain total — the
// interleaving-based measure underlying "computationally better". Fig. 2 is
// exactly the gap between these two measures.
//
// Executions of different programs are paired by a deterministic branch
// oracle keyed on (branch node id, visit index): code motion preserves node
// ids and never adds branch nodes, so the same oracle drives corresponding
// paths through the original and the transformed program.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/graph.hpp"

namespace parcm {

class BranchOracle {
 public:
  virtual ~BranchOracle() = default;
  // Returns the index of the out-edge to take (< num_choices).
  virtual std::size_t choose(NodeId branch, std::size_t visit,
                             std::size_t num_choices) = 0;
};

// Deterministic pseudo-random decisions from a seed; uniform over the
// out-edges. Nondeterministic loops terminate with probability 1, and the
// step bound catches the unlucky tail.
class SeededOracle : public BranchOracle {
 public:
  explicit SeededOracle(std::uint64_t seed) : seed_(seed) {}
  std::size_t choose(NodeId branch, std::size_t visit,
                     std::size_t num_choices) override;

 private:
  std::uint64_t seed_;
};

// Always takes the given edge index (clamped); FixedOracle(1) exits
// builder-generated nondeterministic loops immediately.
class FixedOracle : public BranchOracle {
 public:
  explicit FixedOracle(std::size_t index) : index_(index) {}
  std::size_t choose(NodeId, std::size_t, std::size_t num_choices) override {
    return index_ < num_choices ? index_ : num_choices - 1;
  }

 private:
  std::size_t index_;
};

// Takes the first out-edge `iterations` times per branch node, then the
// last one. On builder-generated `while (*)` loops (body edge first, exit
// edge last) this runs every loop exactly `iterations` times — the
// deterministic trip-count driver for the Fig. 10 sweeps.
class LoopOracle : public BranchOracle {
 public:
  explicit LoopOracle(std::size_t iterations) : iterations_(iterations) {}
  std::size_t choose(NodeId, std::size_t visit,
                     std::size_t num_choices) override {
    return visit < iterations_ ? 0 : num_choices - 1;
  }

 private:
  std::size_t iterations_;
};

struct CostResult {
  bool ok = false;         // false if max_steps was exhausted
  std::uint64_t time = 0;  // bottleneck execution time
  std::uint64_t computations = 0;  // total operator evaluations
};

CostResult execution_time(const Graph& g, BranchOracle& oracle,
                          std::size_t max_steps = 1u << 20);

// Drives a and b with identical decisions; nullopt when either run hits the
// step bound.
std::optional<std::pair<CostResult, CostResult>> paired_execution_times(
    const Graph& a, const Graph& b, std::uint64_t seed,
    std::size_t max_steps = 1u << 20);

}  // namespace parcm
