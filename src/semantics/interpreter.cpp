#include "semantics/interpreter.hpp"

#include "support/diagnostics.hpp"

namespace parcm {

Config::Config(const Graph& g) : pc_(g.num_regions()) {}

Config Config::initial(const Graph& g) {
  Config c(g);
  c.set_pc(g.root_region(), g.start());
  return c;
}

bool Config::terminal() const {
  for (const NodeId& n : pc_) {
    if (n.valid()) return false;
  }
  return true;
}

std::vector<std::uint32_t> Config::encode() const {
  std::vector<std::uint32_t> out;
  out.reserve(pc_.size());
  for (const NodeId& n : pc_) out.push_back(n.value());
  return out;
}

std::size_t ConfigHash::operator()(const std::vector<std::uint32_t>& v) const {
  // FNV-1a over the words.
  std::size_t h = 1469598103934665603ull;
  for (std::uint32_t w : v) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

// A parked parent (pc on a ParEnd) may only run once every component of the
// statement has terminated.
bool thread_runnable(const Graph& g, const Config& c, RegionId r) {
  const Node& node = g.node(c.pc(r));
  if (node.kind == NodeKind::kBarrier) return false;
  if (node.kind != NodeKind::kParEnd) return true;
  for (RegionId comp : g.par_stmt(node.par_stmt).components) {
    if (c.active(comp)) return false;
  }
  return true;
}

std::vector<Transition> barrier_release_transitions(const Graph& g,
                                                    const Config& c) {
  std::vector<Transition> out;
  for (std::size_t si = 0; si < g.num_par_stmts(); ++si) {
    ParStmtId s(static_cast<ParStmtId::underlying>(si));
    bool any_waiting = false;
    bool all_waiting = true;
    for (RegionId comp : g.par_stmt(s).components) {
      if (!c.active(comp)) continue;
      if (g.node(c.pc(comp)).kind == NodeKind::kBarrier) {
        any_waiting = true;
      } else {
        all_waiting = false;
      }
    }
    if (any_waiting && all_waiting) {
      Transition t;
      t.barrier_stmt = s;
      out.push_back(t);
    }
  }
  return out;
}

void append_thread_transitions(const Graph& g, const Config& c, RegionId r,
                               const VarState* s,
                               std::vector<Transition>* out) {
  if (!thread_runnable(g, c, r)) return;
  NodeId n = c.pc(r);
  const Node& node = g.node(n);

  if (node.kind == NodeKind::kParBegin) {
    out->push_back(Transition{r, n, EdgeId(), ParStmtId()});
    return;
  }
  if (node.out_edges.empty()) {
    // Only e* has no out-edges.
    out->push_back(Transition{r, n, EdgeId(), ParStmtId()});
    return;
  }
  if (node.kind == NodeKind::kTest && s != nullptr) {
    bool taken = eval_test(g, n, *s);
    out->push_back(
        Transition{r, n, node.out_edges[taken ? 0 : 1], ParStmtId()});
    return;
  }
  for (EdgeId e : node.out_edges) {
    out->push_back(Transition{r, n, e, ParStmtId()});
  }
}

namespace {

std::vector<Transition> transitions_impl(const Graph& g, const Config& c,
                                         const VarState* s) {
  std::vector<Transition> out;
  for (std::size_t i = 0; i < g.num_regions(); ++i) {
    RegionId r(static_cast<RegionId::underlying>(i));
    if (c.active(r)) append_thread_transitions(g, c, r, s, &out);
  }
  for (Transition& t : barrier_release_transitions(g, c)) {
    out.push_back(t);
  }
  return out;
}

}  // namespace

std::vector<Transition> enabled_transitions(const Graph& g, const Config& c) {
  return transitions_impl(g, c, nullptr);
}

std::vector<Transition> enabled_transitions(const Graph& g, const Config& c,
                                            const VarState& s) {
  return transitions_impl(g, c, &s);
}

Config apply_transition(const Graph& g, const Config& c, const Transition& t) {
  Config out = c;
  if (t.barrier_stmt.valid()) {
    // Collective release: every waiting component steps across its barrier.
    for (RegionId comp : g.par_stmt(t.barrier_stmt).components) {
      if (!out.active(comp)) continue;
      NodeId b = out.pc(comp);
      PARCM_CHECK(g.node(b).kind == NodeKind::kBarrier,
                  "barrier release with a non-waiting component");
      PARCM_CHECK(g.node(b).out_edges.size() == 1,
                  "barrier must have one out-edge");
      NodeId target = g.edge(g.node(b).out_edges[0]).to;
      if (g.node(target).kind == NodeKind::kParEnd &&
          g.region(g.node(b).region).owner == g.node(target).par_stmt) {
        out.clear_pc(comp);
      } else {
        out.set_pc(comp, target);
      }
    }
    return out;
  }
  const Node& node = g.node(t.node);

  if (node.kind == NodeKind::kParBegin) {
    const ParStmt& stmt = g.par_stmt(node.par_stmt);
    // Park the spawner on the ParEnd; activate every component.
    out.set_pc(t.region, stmt.end);
    for (RegionId comp : stmt.components) {
      out.set_pc(comp, g.component_entry(comp));
    }
    return out;
  }
  if (!t.edge.valid()) {
    // e*: the main thread terminates.
    PARCM_CHECK(t.node == g.end(), "edge-less transition away from e*");
    out.clear_pc(t.region);
    return out;
  }
  NodeId target = g.edge(t.edge).to;
  const Node& target_node = g.node(target);
  if (target_node.kind == NodeKind::kParEnd &&
      g.region(g.node(t.node).region).owner == target_node.par_stmt) {
    // Exiting the component: this thread ends; the parked parent will run
    // the ParEnd once its siblings are done too.
    out.clear_pc(t.region);
    return out;
  }
  out.set_pc(t.region, target);
  return out;
}

std::optional<VarState> run_random_schedule(const Graph& g, Rng& rng,
                                            std::size_t max_steps,
                                            Schedule* record) {
  Config c = Config::initial(g);
  VarState s(g.num_vars());
  for (std::size_t step = 0; step < max_steps; ++step) {
    if (c.terminal()) return s;
    std::vector<Transition> ts = enabled_transitions(g, c, s);
    PARCM_CHECK(!ts.empty(), "deadlocked configuration");
    const Transition& t = ts[rng.below(ts.size())];
    if (record != nullptr) record->push_back(t);
    if (!t.barrier_stmt.valid()) execute_node(g, t.node, s);
    c = apply_transition(g, c, t);
  }
  return std::nullopt;
}

std::optional<VarState> replay_schedule(const Graph& g,
                                        const Schedule& schedule) {
  Config c = Config::initial(g);
  VarState s(g.num_vars());
  for (const Transition& t : schedule) {
    PARCM_CHECK(!c.terminal(), "schedule continues past termination");
    if (t.barrier_stmt.valid()) {
      c = apply_transition(g, c, t);
      continue;
    }
    PARCM_CHECK(c.active(t.region) && c.pc(t.region) == t.node &&
                    thread_runnable(g, c, t.region),
                "schedule step not enabled (graph/schedule mismatch)");
    if (g.node(t.node).kind == NodeKind::kTest) {
      bool taken = eval_test(g, t.node, s);
      PARCM_CHECK(t.edge == g.node(t.node).out_edges[taken ? 0 : 1],
                  "schedule disagrees with test outcome");
    }
    execute_node(g, t.node, s);
    c = apply_transition(g, c, t);
  }
  if (!c.terminal()) return std::nullopt;
  return s;
}

}  // namespace parcm
