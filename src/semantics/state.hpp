// Shared-memory data state for the interleaving interpreter.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/graph.hpp"

namespace parcm {

class VarState {
 public:
  explicit VarState(std::size_t num_vars) : values_(num_vars, 0) {}

  std::int64_t get(VarId v) const {
    return v.index() < values_.size() ? values_[v.index()] : 0;
  }
  void set(VarId v, std::int64_t value) {
    if (v.index() >= values_.size()) values_.resize(v.index() + 1, 0);
    values_[v.index()] = value;
  }

  const std::vector<std::int64_t>& values() const { return values_; }

  bool operator==(const VarState&) const = default;

 private:
  std::vector<std::int64_t> values_;
};

std::int64_t eval_operand(const VarState& s, const Operand& op);

// Division by zero yields 0 (total semantics keeps the enumerator simple);
// comparisons yield 1/0.
std::int64_t eval_rhs(const VarState& s, const Rhs& rhs);

// Executes node n's statement (assignments mutate s; everything else is
// skip). Atomic, per the paper's Remark 2.1.
void execute_node(const Graph& g, NodeId n, VarState& s);

// Condition of a test node, as a boolean.
bool eval_test(const Graph& g, NodeId n, const VarState& s);

}  // namespace parcm
