#include "semantics/cost.hpp"

#include <unordered_map>

#include "support/diagnostics.hpp"

namespace parcm {

std::size_t SeededOracle::choose(NodeId branch, std::size_t visit,
                                 std::size_t num_choices) {
  // splitmix64-style mix of (seed, node, visit).
  std::uint64_t x = seed_ ^ (static_cast<std::uint64_t>(branch.value()) << 32) ^
                    static_cast<std::uint64_t>(visit);
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x = x ^ (x >> 31);
  return static_cast<std::size_t>(x % num_choices);
}

namespace {

class CostWalker {
 public:
  CostWalker(const Graph& g, BranchOracle& oracle, std::size_t max_steps)
      : g_(g), oracle_(oracle), remaining_(max_steps) {}

  CostResult run() {
    CostResult res;
    std::vector<std::uint64_t> phases{0};
    res.ok = walk(g_.start(), ParStmtId(), &phases, &res.computations);
    for (std::uint64_t p : phases) res.time += p;
    return res;
  }

 private:
  // Walks one thread from `pc` until the thread ends: the root thread ends
  // after e*, a component thread (inside `owner`) ends when it takes an
  // edge to owner's ParEnd. Accumulates the thread's structural time as a
  // list of *phases* split at its own barriers (components synchronize at
  // barriers, so the statement's time is the per-phase maximum, summed),
  // plus the global computation count.
  bool walk(NodeId pc, ParStmtId owner, std::vector<std::uint64_t>* phases,
            std::uint64_t* comps) {
    for (;;) {
      if (remaining_ == 0) return false;
      --remaining_;

      const Node& node = g_.node(pc);
      if (node.kind == NodeKind::kAssign && node.rhs.is_term()) {
        phases->back() += 1;
        *comps += 1;
      }
      if (node.kind == NodeKind::kBarrier && g_.pfg(pc) == owner) {
        // Synchronization point of this thread's own statement.
        phases->push_back(0);
      }
      if (pc == g_.end()) return true;

      if (node.kind == NodeKind::kParBegin) {
        const ParStmt& stmt = g_.par_stmt(node.par_stmt);
        std::vector<std::vector<std::uint64_t>> comp_phases;
        std::size_t max_phases = 0;
        for (RegionId comp : stmt.components) {
          std::vector<std::uint64_t> ph{0};
          if (!walk(g_.component_entry(comp), node.par_stmt, &ph, comps)) {
            return false;
          }
          max_phases = std::max(max_phases, ph.size());
          comp_phases.push_back(std::move(ph));
        }
        // Per barrier phase, the bottleneck component pays; a component
        // with fewer phases (it exited early) contributes nothing there.
        for (std::size_t p = 0; p < max_phases; ++p) {
          std::uint64_t bottleneck = 0;
          for (const auto& ph : comp_phases) {
            if (p < ph.size()) bottleneck = std::max(bottleneck, ph[p]);
          }
          phases->back() += bottleneck;
        }
        pc = stmt.end;
        continue;
      }

      // Choose the outgoing edge; only multi-successor nodes consult the
      // oracle so inserted single-successor nodes never shift decisions.
      const auto& out = node.out_edges;
      PARCM_CHECK(!out.empty(), "dead-end node during cost walk");
      std::size_t idx = 0;
      if (out.size() > 1) {
        idx = oracle_.choose(pc, visits_[pc.value()]++, out.size());
      }
      NodeId target = g_.edge(out[idx]).to;
      if (owner.valid() && g_.node(target).kind == NodeKind::kParEnd &&
          g_.node(target).par_stmt == owner) {
        return true;  // component finished
      }
      pc = target;
    }
  }

  const Graph& g_;
  BranchOracle& oracle_;
  std::size_t remaining_;
  std::unordered_map<std::uint32_t, std::size_t> visits_;
};

}  // namespace

CostResult execution_time(const Graph& g, BranchOracle& oracle,
                          std::size_t max_steps) {
  return CostWalker(g, oracle, max_steps).run();
}

std::optional<std::pair<CostResult, CostResult>> paired_execution_times(
    const Graph& a, const Graph& b, std::uint64_t seed,
    std::size_t max_steps) {
  SeededOracle oa(seed);
  CostResult ra = execution_time(a, oa, max_steps);
  SeededOracle ob(seed);
  CostResult rb = execution_time(b, ob, max_steps);
  if (!ra.ok || !rb.ok) return std::nullopt;
  return std::make_pair(ra, rb);
}

}  // namespace parcm
