#include "workload/randomprog.hpp"

#include <string>

#include "ir/builder.hpp"

namespace parcm {

namespace {

class Generator {
 public:
  Generator(Rng& rng, const RandomProgramOptions& opt)
      : rng_(rng), opt_(opt), budget_(opt.target_stmts) {
    for (int i = 0; i < opt_.num_vars; ++i) {
      vars_.push_back(builder_.var("v" + std::to_string(i)));
    }
  }

  Graph run() {
    block(0);
    // Guarantee at least one movable computation so downstream consumers
    // (term tables, analyses) have something to chew on.
    builder_.assign(pick_var(), Rhs(random_term()));
    return builder_.finish();
  }

 private:
  VarId pick_var() { return vars_[rng_.below(vars_.size())]; }

  Operand random_operand() {
    if (rng_.chance(200, 1000)) {
      return Operand::constant(rng_.range(0, 9));
    }
    return Operand::var(pick_var());
  }

  Term random_term() {
    static constexpr BinOp kOps[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul};
    return Term{kOps[rng_.below(3)], random_operand(), random_operand()};
  }

  Rhs random_cond() {
    static constexpr BinOp kRels[] = {BinOp::kLt, BinOp::kLe, BinOp::kNe};
    return Rhs(Term{kRels[rng_.below(3)], random_operand(), random_operand()});
  }

  void assignment() {
    VarId lhs = pick_var();
    if (rng_.chance(static_cast<std::uint64_t>(opt_.trivial_permille), 1000)) {
      builder_.assign(lhs, Rhs(random_operand()));
      return;
    }
    Term t = random_term();
    if (rng_.chance(static_cast<std::uint64_t>(opt_.recursive_permille),
                    1000)) {
      // Force the lhs into the rhs to make the assignment recursive.
      t.lhs = Operand::var(lhs);
    }
    builder_.assign(lhs, Rhs(t));
  }

  void statement(int par_depth) {
    if (budget_ == 0) return;
    --budget_;
    if (par_depth > 0 && opt_.barrier_permille > 0 &&
        rng_.chance(static_cast<std::uint64_t>(opt_.barrier_permille), 1000)) {
      builder_.barrier();
      return;
    }
    std::uint64_t roll = rng_.below(1000);
    std::uint64_t acc = 0;

    acc += static_cast<std::uint64_t>(opt_.par_permille);
    if (roll < acc && par_depth < opt_.max_par_depth && budget_ >= 2) {
      std::size_t comps =
          2 + rng_.below(static_cast<std::uint64_t>(opt_.max_components - 1));
      std::vector<GraphBuilder::BlockFn> blocks;
      for (std::size_t i = 0; i < comps; ++i) {
        blocks.push_back([this, par_depth] { block(par_depth + 1); });
      }
      builder_.par(blocks);
      return;
    }

    acc += static_cast<std::uint64_t>(opt_.if_permille);
    if (roll < acc) {
      auto then_b = [this, par_depth] { block(par_depth); };
      auto else_b = [this, par_depth] { block(par_depth); };
      if (opt_.cond_permille > 0 &&
          rng_.chance(static_cast<std::uint64_t>(opt_.cond_permille), 1000)) {
        builder_.if_cond(random_cond(), then_b, else_b);
      } else {
        builder_.if_nondet(then_b, else_b);
      }
      return;
    }

    acc += static_cast<std::uint64_t>(opt_.while_permille);
    if (roll < acc) {
      builder_.while_nondet([this, par_depth] { block(par_depth); });
      return;
    }

    acc += static_cast<std::uint64_t>(opt_.choose_permille);
    if (roll < acc) {
      builder_.choose({[this, par_depth] { block(par_depth); },
                       [this, par_depth] { block(par_depth); }});
      return;
    }

    assignment();
  }

  void block(int par_depth) {
    std::size_t n = 1 + rng_.below(3);
    for (std::size_t i = 0; i < n && budget_ > 0; ++i) statement(par_depth);
  }

  Rng& rng_;
  const RandomProgramOptions& opt_;
  std::size_t budget_;
  GraphBuilder builder_;
  std::vector<VarId> vars_;
};

// AST twin of Generator. Same structured vocabulary, but builds lang::Stmt
// values instead of driving GraphBuilder, so the result can be unparsed and
// delta-debugged. Shapes are kept in sync with Generator by hand; the two
// deliberately consume their RNG differently (the AST path adds the pitfall
// shapes), so equal seeds do not imply equal programs across the two APIs.
class AstGenerator {
 public:
  AstGenerator(Rng& rng, const RandomProgramOptions& opt)
      : rng_(rng), opt_(opt), budget_(opt.target_stmts) {
    for (int i = 0; i < opt_.num_vars; ++i) {
      vars_.push_back("v" + std::to_string(i));
    }
  }

  lang::Program run() {
    lang::Program p;
    block(&p.body, 0);
    // Guarantee at least one movable computation (mirrors Generator::run).
    p.body.push_back(assign_stmt(pick_var(), random_term()));
    return p;
  }

 private:
  const std::string& pick_var() { return vars_[rng_.below(vars_.size())]; }

  lang::AOperand random_operand() {
    if (rng_.chance(200, 1000)) {
      return lang::AOperand::constant(rng_.range(0, 9));
    }
    return lang::AOperand::var(pick_var());
  }

  BinOp random_op() {
    static constexpr BinOp kOps[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul};
    return kOps[rng_.below(3)];
  }

  lang::AExpr random_term() {
    return lang::AExpr{random_operand(), random_op(), random_operand()};
  }

  lang::ACond random_cond() {
    static constexpr BinOp kRels[] = {BinOp::kLt, BinOp::kLe, BinOp::kNe};
    lang::ACond c;
    c.nondet = false;
    c.expr = lang::AExpr{random_operand(), kRels[rng_.below(3)],
                         random_operand()};
    return c;
  }

  static lang::Stmt assign_stmt(std::string lhs, lang::AExpr rhs) {
    lang::Stmt s;
    s.kind = lang::StmtKind::kAssign;
    s.lhs = std::move(lhs);
    s.rhs = std::move(rhs);
    return s;
  }

  lang::Stmt assignment() {
    std::string lhs = pick_var();
    if (rng_.chance(static_cast<std::uint64_t>(opt_.trivial_permille), 1000)) {
      return assign_stmt(std::move(lhs), lang::AExpr{random_operand(), {}, {}});
    }
    lang::AExpr t = random_term();
    if (rng_.chance(static_cast<std::uint64_t>(opt_.recursive_permille),
                    1000)) {
      t.a = lang::AOperand::var(lhs);
    }
    return assign_stmt(std::move(lhs), std::move(t));
  }

  // Two distinct variables; falls back to duplicates with one variable.
  std::pair<std::string, std::string> pick_var_pair() {
    std::string a = pick_var();
    std::string b = pick_var();
    while (b == a && vars_.size() > 1) b = pick_var();
    return {std::move(a), std::move(b)};
  }

  // The pitfall shapes seed their operands with *distinct* constants first:
  // with everything default-zero the racy intermediate values coincide with
  // the correct ones and the divergence is invisible to any oracle.
  void init_distinct(lang::Block* out, const std::string& a,
                     const std::string& b) {
    std::int64_t ca = rng_.range(1, 5);
    out->push_back(
        assign_stmt(a, lang::AExpr{lang::AOperand::constant(ca), {}, {}}));
    out->push_back(assign_stmt(
        b, lang::AExpr{lang::AOperand::constant(ca + rng_.range(1, 4)),
                       {}, {}}));
  }

  // Paper Fig. 4 shape: a recursive occurrence of a op b followed by a plain
  // one in the same component, a sibling occurrence, and a post-join
  // occurrence. Both in-component occurrences need an initialization, so a
  // shared (unprivatized) temporary lets the sibling's stale value win (P2 /
  // privatization).
  void p2_shape(lang::Block* out) {
    auto [a, b] = pick_var_pair();
    BinOp op = random_op();
    lang::AExpr occ{lang::AOperand::var(a), op, lang::AOperand::var(b)};
    init_distinct(out, a, b);
    lang::Stmt par;
    par.kind = lang::StmtKind::kPar;
    par.blocks.resize(2);
    par.blocks[0].push_back(assign_stmt(a, occ));
    par.blocks[0].push_back(assign_stmt(pick_var(), occ));
    par.blocks[1].push_back(assign_stmt(pick_var(), occ));
    out->push_back(std::move(par));
    out->push_back(assign_stmt(pick_var(), occ));
  }

  // Paper Figs. 6/7 shape: two occurrences of a op b bracket a modification
  // of a in one component, the sibling holds another occurrence (sometimes
  // symmetrically bracketing a modification of b), and the term occurs again
  // after the join. Up-/down-safety hold at the join via *different*
  // occurrences on different interleavings, so the naive placement (and,
  // two-sided, a missing ParEnd export rule) suppresses a needed post-join
  // initialization (P3).
  void p3_shape(lang::Block* out) {
    auto [a, b] = pick_var_pair();
    BinOp op = random_op();
    lang::AExpr occ{lang::AOperand::var(a), op, lang::AOperand::var(b)};
    init_distinct(out, a, b);
    lang::Stmt par;
    par.kind = lang::StmtKind::kPar;
    par.blocks.resize(2);
    par.blocks[0].push_back(assign_stmt(pick_var(), occ));
    par.blocks[0].push_back(assign_stmt(
        a, lang::AExpr{lang::AOperand::constant(rng_.range(6, 9)), {}, {}}));
    par.blocks[0].push_back(assign_stmt(pick_var(), occ));
    par.blocks[1].push_back(assign_stmt(pick_var(), occ));
    if (rng_.chance(1, 2)) {  // the full, two-sided Fig. 7
      par.blocks[1].push_back(assign_stmt(
          b,
          lang::AExpr{lang::AOperand::constant(rng_.range(6, 9)), {}, {}}));
      par.blocks[1].push_back(assign_stmt(pick_var(), occ));
    }
    out->push_back(std::move(par));
    out->push_back(assign_stmt(pick_var(), occ));
  }

  void statement(lang::Block* out, int par_depth) {
    if (budget_ == 0) return;
    --budget_;
    if (par_depth > 0 && opt_.barrier_permille > 0 &&
        rng_.chance(static_cast<std::uint64_t>(opt_.barrier_permille), 1000)) {
      lang::Stmt s;
      s.kind = lang::StmtKind::kBarrier;
      out->push_back(std::move(s));
      return;
    }
    if (par_depth < opt_.max_par_depth && budget_ >= 2 &&
        opt_.p2_shape_permille > 0 &&
        rng_.chance(static_cast<std::uint64_t>(opt_.p2_shape_permille),
                    1000)) {
      if (budget_ > 0) --budget_;
      p2_shape(out);
      return;
    }
    if (par_depth < opt_.max_par_depth && budget_ >= 2 &&
        opt_.p3_shape_permille > 0 &&
        rng_.chance(static_cast<std::uint64_t>(opt_.p3_shape_permille),
                    1000)) {
      if (budget_ > 0) --budget_;
      p3_shape(out);
      return;
    }
    std::uint64_t roll = rng_.below(1000);
    std::uint64_t acc = 0;

    acc += static_cast<std::uint64_t>(opt_.par_permille);
    if (roll < acc && par_depth < opt_.max_par_depth && budget_ >= 2) {
      std::size_t comps =
          2 + rng_.below(static_cast<std::uint64_t>(opt_.max_components - 1));
      lang::Stmt s;
      s.kind = lang::StmtKind::kPar;
      s.blocks.resize(comps);
      for (std::size_t i = 0; i < comps; ++i) {
        block(&s.blocks[i], par_depth + 1);
      }
      out->push_back(std::move(s));
      return;
    }

    acc += static_cast<std::uint64_t>(opt_.if_permille);
    if (roll < acc) {
      lang::Stmt s;
      s.kind = lang::StmtKind::kIf;
      s.blocks.resize(2);
      if (opt_.cond_permille > 0 &&
          rng_.chance(static_cast<std::uint64_t>(opt_.cond_permille), 1000)) {
        s.cond = random_cond();
      } else {
        s.cond.nondet = true;
      }
      block(&s.blocks[0], par_depth);
      block(&s.blocks[1], par_depth);
      out->push_back(std::move(s));
      return;
    }

    acc += static_cast<std::uint64_t>(opt_.while_permille);
    if (roll < acc) {
      lang::Stmt s;
      s.kind = lang::StmtKind::kWhile;
      s.cond.nondet = true;
      s.blocks.resize(1);
      block(&s.blocks[0], par_depth);
      out->push_back(std::move(s));
      return;
    }

    acc += static_cast<std::uint64_t>(opt_.choose_permille);
    if (roll < acc) {
      lang::Stmt s;
      s.kind = lang::StmtKind::kChoose;
      s.blocks.resize(2);
      block(&s.blocks[0], par_depth);
      block(&s.blocks[1], par_depth);
      out->push_back(std::move(s));
      return;
    }

    out->push_back(assignment());
  }

  void block(lang::Block* out, int par_depth) {
    std::size_t n = 1 + rng_.below(3);
    for (std::size_t i = 0; i < n && budget_ > 0; ++i) {
      statement(out, par_depth);
    }
  }

  Rng& rng_;
  const RandomProgramOptions& opt_;
  std::size_t budget_;
  std::vector<std::string> vars_;
};

}  // namespace

Graph random_program(Rng& rng, const RandomProgramOptions& options) {
  return Generator(rng, options).run();
}

lang::Program random_program_ast(Rng& rng,
                                 const RandomProgramOptions& options) {
  return AstGenerator(rng, options).run();
}

}  // namespace parcm
