#include "workload/randomprog.hpp"

#include <string>

#include "ir/builder.hpp"

namespace parcm {

namespace {

class Generator {
 public:
  Generator(Rng& rng, const RandomProgramOptions& opt)
      : rng_(rng), opt_(opt), budget_(opt.target_stmts) {
    for (int i = 0; i < opt_.num_vars; ++i) {
      vars_.push_back(builder_.var("v" + std::to_string(i)));
    }
  }

  Graph run() {
    block(0);
    // Guarantee at least one movable computation so downstream consumers
    // (term tables, analyses) have something to chew on.
    builder_.assign(pick_var(), Rhs(random_term()));
    return builder_.finish();
  }

 private:
  VarId pick_var() { return vars_[rng_.below(vars_.size())]; }

  Operand random_operand() {
    if (rng_.chance(200, 1000)) {
      return Operand::constant(rng_.range(0, 9));
    }
    return Operand::var(pick_var());
  }

  Term random_term() {
    static constexpr BinOp kOps[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul};
    return Term{kOps[rng_.below(3)], random_operand(), random_operand()};
  }

  Rhs random_cond() {
    static constexpr BinOp kRels[] = {BinOp::kLt, BinOp::kLe, BinOp::kNe};
    return Rhs(Term{kRels[rng_.below(3)], random_operand(), random_operand()});
  }

  void assignment() {
    VarId lhs = pick_var();
    if (rng_.chance(static_cast<std::uint64_t>(opt_.trivial_permille), 1000)) {
      builder_.assign(lhs, Rhs(random_operand()));
      return;
    }
    Term t = random_term();
    if (rng_.chance(static_cast<std::uint64_t>(opt_.recursive_permille),
                    1000)) {
      // Force the lhs into the rhs to make the assignment recursive.
      t.lhs = Operand::var(lhs);
    }
    builder_.assign(lhs, Rhs(t));
  }

  void statement(int par_depth) {
    if (budget_ == 0) return;
    --budget_;
    if (par_depth > 0 && opt_.barrier_permille > 0 &&
        rng_.chance(static_cast<std::uint64_t>(opt_.barrier_permille), 1000)) {
      builder_.barrier();
      return;
    }
    std::uint64_t roll = rng_.below(1000);
    std::uint64_t acc = 0;

    acc += static_cast<std::uint64_t>(opt_.par_permille);
    if (roll < acc && par_depth < opt_.max_par_depth && budget_ >= 2) {
      std::size_t comps =
          2 + rng_.below(static_cast<std::uint64_t>(opt_.max_components - 1));
      std::vector<GraphBuilder::BlockFn> blocks;
      for (std::size_t i = 0; i < comps; ++i) {
        blocks.push_back([this, par_depth] { block(par_depth + 1); });
      }
      builder_.par(blocks);
      return;
    }

    acc += static_cast<std::uint64_t>(opt_.if_permille);
    if (roll < acc) {
      auto then_b = [this, par_depth] { block(par_depth); };
      auto else_b = [this, par_depth] { block(par_depth); };
      if (opt_.cond_permille > 0 &&
          rng_.chance(static_cast<std::uint64_t>(opt_.cond_permille), 1000)) {
        builder_.if_cond(random_cond(), then_b, else_b);
      } else {
        builder_.if_nondet(then_b, else_b);
      }
      return;
    }

    acc += static_cast<std::uint64_t>(opt_.while_permille);
    if (roll < acc) {
      builder_.while_nondet([this, par_depth] { block(par_depth); });
      return;
    }

    acc += static_cast<std::uint64_t>(opt_.choose_permille);
    if (roll < acc) {
      builder_.choose({[this, par_depth] { block(par_depth); },
                       [this, par_depth] { block(par_depth); }});
      return;
    }

    assignment();
  }

  void block(int par_depth) {
    std::size_t n = 1 + rng_.below(3);
    for (std::size_t i = 0; i < n && budget_ > 0; ++i) statement(par_depth);
  }

  Rng& rng_;
  const RandomProgramOptions& opt_;
  std::size_t budget_;
  GraphBuilder builder_;
  std::vector<VarId> vars_;
};

}  // namespace

Graph random_program(Rng& rng, const RandomProgramOptions& options) {
  return Generator(rng, options).run();
}

}  // namespace parcm
