#include "workload/families.hpp"

#include <functional>
#include <string>

#include "ir/builder.hpp"

namespace parcm::families {

namespace {

// x_i := a_j + b_j cycling j over the term pool.
void emit_chain(GraphBuilder& b, std::size_t n, std::size_t term_pool,
                const std::string& prefix) {
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j = i % term_pool;
    b.assign(prefix + "x" + std::to_string(i % 7),
             b.v("a" + std::to_string(j)), BinOp::kAdd,
             b.v("b" + std::to_string(j)));
  }
}

}  // namespace

Graph fig2_family(std::size_t bottleneck) {
  GraphBuilder b;
  b.assign("b", GraphBuilder::c(1));
  b.assign("c", GraphBuilder::c(2));
  b.par({[&] { b.assign("x", b.v("c"), BinOp::kAdd, b.v("b")); },
         [&] {
           for (std::size_t i = 0; i < bottleneck; ++i) {
             b.assign("u", b.v("u"), BinOp::kAdd, GraphBuilder::c(1));
           }
         }});
  b.assign("d", b.v("c"), BinOp::kAdd, b.v("b"));
  return b.finish();
}

Graph fig10_family(std::size_t loops_per_component) {
  GraphBuilder b;
  for (char v : {'a', 'b', 'g', 'h', 'j', 'k'}) {
    b.assign(std::string(1, v), GraphBuilder::c(v));
  }
  auto component = [&](const std::string& inv_lhs, const std::string& op1,
                       const std::string& op2, std::size_t loops) {
    b.assign("q_" + inv_lhs, b.v("a"), BinOp::kAdd, b.v("b"));
    for (std::size_t l = 0; l < loops; ++l) {
      b.while_nondet([&, l] {
        b.assign(inv_lhs + std::to_string(l), b.v(op1), BinOp::kAdd, b.v(op2));
      });
    }
  };
  b.par({[&] { component("r", "g", "h", loops_per_component); },
         [&] { component("u", "j", "k", loops_per_component); }});
  b.assign("w", b.v("a"), BinOp::kAdd, b.v("b"));
  return b.finish();
}

Graph seq_chain(std::size_t n, std::size_t term_pool) {
  GraphBuilder b;
  for (std::size_t j = 0; j < term_pool; ++j) {
    b.assign("a" + std::to_string(j), GraphBuilder::c(static_cast<int>(j)));
    b.assign("b" + std::to_string(j),
             GraphBuilder::c(static_cast<int>(j) + 1));
  }
  emit_chain(b, n, term_pool, "");
  return b.finish();
}

Graph par_wide(std::size_t components, std::size_t len,
               std::size_t term_pool) {
  GraphBuilder b;
  for (std::size_t j = 0; j < term_pool; ++j) {
    b.assign("a" + std::to_string(j), GraphBuilder::c(static_cast<int>(j)));
    b.assign("b" + std::to_string(j),
             GraphBuilder::c(static_cast<int>(j) + 1));
  }
  std::vector<GraphBuilder::BlockFn> comps;
  for (std::size_t c = 0; c < components; ++c) {
    comps.push_back([&b, c, len, term_pool] {
      emit_chain(b, len, term_pool, "c" + std::to_string(c) + "_");
    });
  }
  b.par(comps);
  b.assign("w", b.v("a0"), BinOp::kAdd, b.v("b0"));
  return b.finish();
}

Graph par_nested(std::size_t depth, std::size_t len) {
  GraphBuilder b;
  b.assign("a0", GraphBuilder::c(1));
  b.assign("b0", GraphBuilder::c(2));
  std::function<void(std::size_t)> nest = [&](std::size_t d) {
    if (d == 0) {
      emit_chain(b, len, 1, "d" + std::to_string(d) + "_");
      return;
    }
    b.par({[&, d] { nest(d - 1); },
           [&, d] { emit_chain(b, len, 1, "s" + std::to_string(d) + "_"); }});
  };
  nest(depth);
  return b.finish();
}

}  // namespace parcm::families
