// Seeded random parallel-program generation for property tests and
// benchmarks. Shapes are drawn from the builder's structured vocabulary so
// every generated graph is well-formed by construction.
#pragma once

#include "ir/graph.hpp"
#include "support/rng.hpp"

namespace parcm {

struct RandomProgramOptions {
  // Approximate number of statements; the generator stops opening new
  // constructs once the budget is spent.
  std::size_t target_stmts = 12;
  // Maximum nesting depth of parallel statements (0 = sequential program).
  int max_par_depth = 1;
  // Maximum components per parallel statement.
  int max_components = 3;
  // Variable pool size ("v0".."vN-1").
  int num_vars = 4;
  // Permille rates per statement kind (rest becomes plain assignments).
  int par_permille = 180;
  int if_permille = 150;
  int while_permille = 80;
  int choose_permille = 50;
  // Chance (permille) that an assignment is recursive (lhs in rhs).
  int recursive_permille = 150;
  // Chance (permille) that an assignment is trivial (x := y / x := c).
  int trivial_permille = 150;
  // Use deterministic conditions (tests) instead of `*` sometimes.
  int cond_permille = 0;
  // Chance (permille) of a barrier statement (only inside components).
  int barrier_permille = 0;
};

Graph random_program(Rng& rng, const RandomProgramOptions& options);

}  // namespace parcm
