// Seeded random parallel-program generation for property tests and
// benchmarks. Shapes are drawn from the builder's structured vocabulary so
// every generated graph is well-formed by construction.
#pragma once

#include "ir/graph.hpp"
#include "lang/ast.hpp"
#include "support/rng.hpp"

namespace parcm {

struct RandomProgramOptions {
  // Approximate number of statements; the generator stops opening new
  // constructs once the budget is spent.
  std::size_t target_stmts = 12;
  // Maximum nesting depth of parallel statements (0 = sequential program).
  int max_par_depth = 1;
  // Maximum components per parallel statement.
  int max_components = 3;
  // Variable pool size ("v0".."vN-1").
  int num_vars = 4;
  // Permille rates per statement kind (rest becomes plain assignments).
  int par_permille = 180;
  int if_permille = 150;
  int while_permille = 80;
  int choose_permille = 50;
  // Chance (permille) that an assignment is recursive (lhs in rhs).
  int recursive_permille = 150;
  // Chance (permille) that an assignment is trivial (x := y / x := c).
  int trivial_permille = 150;
  // Use deterministic conditions (tests) instead of `*` sometimes.
  int cond_permille = 0;
  // Chance (permille) of a barrier statement (only inside components).
  int barrier_permille = 0;
  // Targeted pitfall shapes (random_program_ast only; both off by default).
  // P2 shape: a parallel statement whose components compute the same term,
  // one of them as a recursive assignment x := x op a — the case where
  // separating initialization from replacement breaks sequential
  // consistency (paper Fig. 3).
  int p2_shape_permille = 0;
  // P3 shape: two occurrences of one term bracketing a sibling component
  // that modifies an operand, plus a post-join occurrence — the
  // interference / up-down-safety case of Figs. 4, 6 and 7.
  int p3_shape_permille = 0;
};

Graph random_program(Rng& rng, const RandomProgramOptions& options);

// AST-producing twin of random_program for the translation-validation
// fuzzer: the program can be unparsed (lang::to_source), reduced by
// verify::reduce_program, and re-lowered. Draws an independent RNG stream —
// graphs from random_program and random_program_ast with the same seed are
// unrelated. Deterministic: the same seed yields a byte-identical source
// rendering across processes and platforms (tests/test_workload.cpp).
lang::Program random_program_ast(Rng& rng, const RandomProgramOptions& options);

}  // namespace parcm
