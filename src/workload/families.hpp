// Parameterized program families backing the benchmark sweeps (DESIGN.md
// experiment ids C1-C6 and the Fig. 2 / Fig. 10 sweeps).
#pragma once

#include <cstddef>

#include "ir/graph.hpp"

namespace parcm::families {

// Fig. 2 with a configurable bottleneck: one component computes c+b (also
// used after the join), the sibling runs `bottleneck` unhoistable recursive
// increments.
Graph fig2_family(std::size_t bottleneck);

// Fig. 10 skeleton with `loops` parallel loop nests; drive the loop trip
// count through cost.hpp's LoopOracle.
Graph fig10_family(std::size_t loops_per_component);

// Straight-line sequential chain: n assignments cycling over a small term
// pool (scaling baseline for C1).
Graph seq_chain(std::size_t n, std::size_t term_pool = 8);

// One parallel statement with `components` components of `len` assignments
// each (C1 scaling, C2 product blowup).
Graph par_wide(std::size_t components, std::size_t len,
               std::size_t term_pool = 8);

// `depth` nested parallel statements, two components each, `len` statements
// per component (C1 scaling on nesting).
Graph par_nested(std::size_t depth, std::size_t len);

}  // namespace parcm::families
